package perf

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkLedger(stamp string, entries ...Entry) *Ledger {
	return &Ledger{
		Schema:  Schema,
		Stamp:   stamp,
		Suite:   "test",
		Host:    HostInfo{OS: "linux", Arch: "amd64", NumCPU: 4, GoVersion: "go1.24.0"},
		Entries: entries,
	}
}

func entry(name string, ns float64, allocs int64) Entry {
	return Entry{Name: name, Iters: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mkLedger("20260101T000000", entry("a", 1000, 5))
	path, err := Save(dir, l)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_20260101T000000.json" {
		t.Fatalf("canonical name: got %s", filepath.Base(path))
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stamp != l.Stamp || len(got.Entries) != 1 ||
		got.Entries[0].Name != "a" || got.Entries[0].NsPerOp != 1000 || got.Entries[0].AllocsPerOp != 5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLatestMissingBaseline(t *testing.T) {
	_, _, err := Latest(t.TempDir())
	if !errors.Is(err, ErrNoBaseline) {
		t.Fatalf("want ErrNoBaseline, got %v", err)
	}
}

func TestLatestPicksNewest(t *testing.T) {
	dir := t.TempDir()
	for _, stamp := range []string{"20260102T000000", "20260101T000000", "20260103T120000"} {
		if _, err := Save(dir, mkLedger(stamp, entry("a", 1, 0))); err != nil {
			t.Fatal(err)
		}
	}
	l, path, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Stamp != "20260103T120000" {
		t.Fatalf("latest stamp: got %s", l.Stamp)
	}
	if filepath.Base(path) != "BENCH_20260103T120000.json" {
		t.Fatalf("latest path: got %s", path)
	}
}

func TestLoadCorruptLedgerRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_20260101T000000.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("want corrupt-ledger error naming the file, got %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error should name the file: %v", err)
	}
}

func TestLoadOldSchemaRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_20260101T000000.json")
	data := `{"schema": 0, "stamp": "20260101T000000", "suite": "test",
	          "host": {}, "entries": [{"name": "a", "iters": 1, "ns_per_op": 1}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "schema 0") {
		t.Fatalf("want schema error, got %v", err)
	}
	if !strings.Contains(err.Error(), "bcectl bench run") {
		t.Fatalf("schema error should say how to re-record: %v", err)
	}
}

func TestSaveRejectsWrongSchema(t *testing.T) {
	l := mkLedger("20260101T000000", entry("a", 1, 0))
	l.Schema = 99
	if _, err := Save(t.TempDir(), l); err == nil {
		t.Fatal("want error saving wrong-schema ledger")
	}
}

func TestLoadEmptyEntriesRejected(t *testing.T) {
	dir := t.TempDir()
	path, err := Save(dir, mkLedger("20260101T000000"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "no entries") {
		t.Fatalf("want no-entries error, got %v", err)
	}
}

func deltaFor(t *testing.T, r *Report, name string) Delta {
	t.Helper()
	for _, d := range r.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %s in %+v", name, r.Deltas)
	return Delta{}
}

func TestCompareNewBenchmarkPassesGate(t *testing.T) {
	base := mkLedger("20260101T000000", entry("old", 1000, 5))
	cur := mkLedger("20260102T000000", entry("old", 1000, 5), entry("fresh", 500, 2))
	r := Compare(base, cur, DefaultThresholds)
	if d := deltaFor(t, r, "fresh"); d.Status != StatusNew {
		t.Fatalf("fresh benchmark: want %s, got %s", StatusNew, d.Status)
	}
	if err := r.Gate(); err != nil {
		t.Fatalf("new benchmark must not fail the gate: %v", err)
	}
}

func TestCompareRemovedBenchmarkPassesGate(t *testing.T) {
	base := mkLedger("20260101T000000", entry("kept", 1000, 5), entry("gone", 100, 1))
	cur := mkLedger("20260102T000000", entry("kept", 1000, 5))
	r := Compare(base, cur, DefaultThresholds)
	if d := deltaFor(t, r, "gone"); d.Status != StatusRemoved {
		t.Fatalf("removed benchmark: want %s, got %s", StatusRemoved, d.Status)
	}
	if err := r.Gate(); err != nil {
		t.Fatalf("removed benchmark must not fail the gate: %v", err)
	}
}

func TestCompareTimeThresholdBoundary(t *testing.T) {
	th := Thresholds{Time: 0.20, Allocs: 0.10}
	base := mkLedger("20260101T000000", entry("b", 1000, 0))

	// Just under: 19% slower stays ok.
	cur := mkLedger("20260102T000000", entry("b", 1190, 0))
	if d := deltaFor(t, Compare(base, cur, th), "b"); d.Status != StatusOK {
		t.Fatalf("19%% slowdown under a 20%% threshold: want ok, got %s (%s)", d.Status, d.Reason)
	}

	// Just over: 21% slower regresses, and the gate fails naming it.
	cur = mkLedger("20260102T000000", entry("b", 1210, 0))
	r := Compare(base, cur, th)
	d := deltaFor(t, r, "b")
	if d.Status != StatusRegression {
		t.Fatalf("21%% slowdown over a 20%% threshold: want regression, got %s", d.Status)
	}
	err := r.Gate()
	if err == nil || !strings.Contains(err.Error(), "b:") {
		t.Fatalf("gate must fail naming the benchmark, got %v", err)
	}

	// Big improvement is reported as faster, never gated.
	cur = mkLedger("20260102T000000", entry("b", 500, 0))
	r = Compare(base, cur, th)
	if d := deltaFor(t, r, "b"); d.Status != StatusFaster {
		t.Fatalf("2x speedup: want faster, got %s", d.Status)
	}
	if err := r.Gate(); err != nil {
		t.Fatalf("speedup must pass the gate: %v", err)
	}
}

func TestCompareAllocThresholdBoundary(t *testing.T) {
	th := Thresholds{Time: -1, Allocs: 0.10} // the CI axis split: time off, allocs on
	base := mkLedger("20260101T000000", entry("b", 1000, 100))

	// 10% growth exactly (plus the half-alloc grace) stays ok.
	cur := mkLedger("20260102T000000", entry("b", 9999999, 110))
	if d := deltaFor(t, Compare(base, cur, th), "b"); d.Status != StatusOK {
		t.Fatalf("110 allocs vs 100 under 10%%: want ok, got %s (%s)", d.Status, d.Reason)
	}

	// One alloc past the grace regresses even though time is wild.
	cur = mkLedger("20260102T000000", entry("b", 9999999, 111))
	r := Compare(base, cur, th)
	if d := deltaFor(t, r, "b"); d.Status != StatusRegression {
		t.Fatalf("111 allocs vs 100 over 10%%: want regression, got %s", d.Status)
	}
	if err := r.Gate(); err == nil {
		t.Fatal("alloc regression must fail the gate")
	}

	// Zero-alloc baselines don't trip on rounding but do trip on growth.
	base = mkLedger("20260101T000000", entry("z", 1000, 0))
	cur = mkLedger("20260102T000000", entry("z", 1000, 0))
	if d := deltaFor(t, Compare(base, cur, th), "z"); d.Status != StatusOK {
		t.Fatalf("0→0 allocs: want ok, got %s", d.Status)
	}
	cur = mkLedger("20260102T000000", entry("z", 1000, 1))
	if d := deltaFor(t, Compare(base, cur, th), "z"); d.Status != StatusRegression {
		t.Fatalf("0→1 allocs: want regression, got %s", d.Status)
	}
}

func TestCompareNegativeThresholdsDisableAxes(t *testing.T) {
	base := mkLedger("20260101T000000", entry("b", 1000, 10))
	cur := mkLedger("20260102T000000", entry("b", 9000, 900))

	if r := Compare(base, cur, Thresholds{Time: -1, Allocs: -1}); r.Gate() != nil {
		t.Fatal("both axes disabled: nothing can regress")
	}
	r := Compare(base, cur, Thresholds{Time: -1, Allocs: 0.10})
	d := deltaFor(t, r, "b")
	if d.Status != StatusRegression || !strings.Contains(d.Reason, "allocs") || strings.Contains(d.Reason, "time") {
		t.Fatalf("time-disabled gate should flag only allocs: %s (%s)", d.Status, d.Reason)
	}
}

func TestCompareFlagsHostMismatch(t *testing.T) {
	base := mkLedger("20260101T000000", entry("b", 1000, 0))
	cur := mkLedger("20260102T000000", entry("b", 1000, 0))
	cur.Host.CPUModel = "different"
	if r := Compare(base, cur, DefaultThresholds); r.SameHost {
		t.Fatal("different host fingerprints must clear SameHost")
	}
	if !strings.Contains(Compare(base, cur, DefaultThresholds).Table(), "different host") {
		t.Fatal("table should warn about cross-host comparison")
	}
}
