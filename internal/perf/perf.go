// Package perf is the emulator's performance ledger: a declared suite
// of hot-path benchmarks, a schema-versioned on-disk trajectory of
// their results (BENCH_<stamp>.json files), and a compare/gate layer
// that turns "this PR made the kernel faster" from an assertion into a
// measurement checked by CI.
//
// The design splits three concerns:
//
//   - The suite (DefaultSuite) declares WHAT is measured: ordinary
//     func(*testing.B) benchmarks, shared verbatim with `go test
//     -bench` via the root bench_test.go, so a human's benchmark run
//     and the ledger's are the same code.
//   - The runner (RunSuite) controls HOW: it executes the suite via
//     testing.Benchmark with a configurable benchtime, so CI can smoke
//     at -benchtime 1x while measurement runs use wall-clock targets.
//   - The ledger (Ledger, Save, Latest) records WHERE IT CAME FROM:
//     ns/op, allocs/op, custom metrics, the commit, and a host
//     fingerprint, because a trajectory of numbers without provenance
//     cannot be compared honestly.
//
// Compare and Gate diff two ledgers under a noise threshold: wall-time
// ratios tolerate scheduler jitter (Thresholds.Time), while allocs/op
// — exact for a deterministic emulator — are held to a tight bound
// (Thresholds.Allocs), which is what CI gates on across heterogeneous
// runners.
package perf

import "testing"

// Bench is one declared benchmark of the perf suite. F is an ordinary
// Go benchmark function so the same definition backs `go test -bench`
// and `bcectl bench run`.
type Bench struct {
	// Name keys the benchmark in ledgers; it must stay stable across
	// commits for trajectories to line up.
	Name string
	// Doc is a one-line description shown by `bcectl bench run -list`.
	Doc string
	F   func(b *testing.B)
}
