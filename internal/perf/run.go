package perf

import (
	"flag"
	"fmt"
	"sync"
	"testing"
)

// testingInit makes the testing package usable outside `go test`:
// testing.Init registers the test.* flags that testing.Benchmark reads
// (benchtime in particular). It must run exactly once per process and
// only after the host program has parsed its own flags, so callers go
// through RunSuite rather than touching testing directly.
var testingInit sync.Once

// RunSuite executes the given benchmarks via testing.Benchmark and
// returns one ledger entry per benchmark, in suite order. benchtime is
// a `go test -benchtime` value ("1x", "100x", "2s"); empty keeps the
// testing default of 1s. logf, when non-nil, receives one progress line
// per finished benchmark.
//
// Allocation counts are always collected (testing.Benchmark samples
// memstats regardless of b.ReportAllocs), so AllocsPerOp is meaningful
// for every entry. A benchmark that calls b.Fatal or b.Skip yields a
// zero-iteration result, which RunSuite reports as an error rather
// than recording a bogus zero entry.
func RunSuite(benches []Bench, benchtime string, logf func(format string, args ...any)) ([]Entry, error) {
	if len(benches) == 0 {
		return nil, fmt.Errorf("perf: empty benchmark suite")
	}
	testingInit.Do(testing.Init)
	if benchtime != "" {
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return nil, fmt.Errorf("perf: bad benchtime %q: %w", benchtime, err)
		}
	}
	entries := make([]Entry, 0, len(benches))
	for _, bn := range benches {
		r := testing.Benchmark(bn.F)
		if r.N == 0 {
			return nil, fmt.Errorf("perf: benchmark %s failed (b.Fatal/b.Skip inside the benchmark)", bn.Name)
		}
		e := Entry{
			Name:        bn.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		entries = append(entries, e)
		if logf != nil {
			logf("%-16s %12.0f ns/op %8d allocs/op %6d iters", bn.Name, e.NsPerOp, e.AllocsPerOp, e.Iters)
		}
	}
	return entries, nil
}
