package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Schema is the on-disk ledger format version. Load rejects files with
// any other value so stale formats fail loudly instead of comparing
// garbage.
const Schema = 1

const (
	filePrefix  = "BENCH_"
	fileSuffix  = ".json"
	stampLayout = "20060102T150405"
)

// ErrNoBaseline is returned by Latest when the directory holds no
// ledger files.
var ErrNoBaseline = errors.New("perf: no BENCH_*.json ledger found")

// Entry is one benchmark's measured result.
type Entry struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// HostInfo fingerprints the machine a ledger was recorded on. Wall-time
// ratios are only comparable between entries with matching
// fingerprints; allocs/op is comparable across machines.
type HostInfo struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	CPUModel  string `json:"cpu_model,omitempty"`
	GoVersion string `json:"go_version"`
}

// Ledger is one recorded run of a benchmark suite: the measurements
// plus the provenance needed to compare them honestly.
type Ledger struct {
	Schema    int      `json:"schema"`
	Stamp     string   `json:"stamp"` // UTC, 20060102T150405; orders files chronologically by name
	Commit    string   `json:"commit,omitempty"`
	Suite     string   `json:"suite"`
	Benchtime string   `json:"benchtime,omitempty"`
	Host      HostInfo `json:"host"`
	Entries   []Entry  `json:"entries"`
}

// NewLedger returns a ledger stamped with the current wall time, the
// repo's HEAD commit (best-effort) and the host fingerprint. Entries
// are filled by the caller from RunSuite.
func NewLedger(suite, benchtime string) *Ledger {
	return &Ledger{
		Schema: Schema,
		//bce:wallclock the stamp is provenance for a real-world measurement
		Stamp:     time.Now().UTC().Format(stampLayout),
		Commit:    gitCommit(),
		Suite:     suite,
		Benchtime: benchtime,
		Host: HostInfo{
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			CPUModel:  cpuModel(),
			GoVersion: runtime.Version(),
		},
	}
}

// Entry returns the named benchmark's entry, or nil.
func (l *Ledger) Entry(name string) *Entry {
	for i := range l.Entries {
		if l.Entries[i].Name == name {
			return &l.Entries[i]
		}
	}
	return nil
}

// FileName returns the ledger's canonical file name,
// BENCH_<stamp>.json. The stamp layout sorts lexicographically in
// chronological order, which is what Latest relies on.
func (l *Ledger) FileName() string {
	return filePrefix + l.Stamp + fileSuffix
}

// Save writes the ledger into dir under its canonical name and returns
// the path.
func Save(dir string, l *Ledger) (string, error) {
	if l.Schema != Schema {
		return "", fmt.Errorf("perf: refusing to save ledger with schema %d (want %d)", l.Schema, Schema)
	}
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return "", fmt.Errorf("perf: encoding ledger: %w", err)
	}
	path := filepath.Join(dir, l.FileName())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("perf: writing ledger: %w", err)
	}
	return path, nil
}

// Load reads and validates one ledger file. Corrupt JSON and
// wrong-schema files are rejected with errors naming the file.
func Load(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: reading ledger: %w", err)
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("perf: corrupt ledger %s: %w", path, err)
	}
	if l.Schema != Schema {
		return nil, fmt.Errorf("perf: ledger %s has schema %d, this build reads schema %d — re-record it with `bcectl bench run`", path, l.Schema, Schema)
	}
	if len(l.Entries) == 0 {
		return nil, fmt.Errorf("perf: ledger %s has no entries", path)
	}
	return &l, nil
}

// List returns the paths of all ledger files in dir, oldest first.
func List(dir string) ([]string, error) {
	glob := filepath.Join(dir, filePrefix+"*"+fileSuffix)
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("perf: listing ledgers: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

// Latest loads the newest ledger in dir (by file name, which the stamp
// layout makes chronological). It returns ErrNoBaseline when the
// directory has none.
func Latest(dir string) (*Ledger, string, error) {
	paths, err := List(dir)
	if err != nil {
		return nil, "", err
	}
	if len(paths) == 0 {
		return nil, "", fmt.Errorf("%w in %s", ErrNoBaseline, dir)
	}
	path := paths[len(paths)-1]
	l, err := Load(path)
	if err != nil {
		return nil, "", err
	}
	return l, path, nil
}

// gitCommit returns the repository HEAD (short hash, "-dirty" suffix
// when the tree has modifications), or "" outside a git checkout.
// Provenance is best-effort: a ledger without a commit is still valid.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		commit += "-dirty"
	}
	return commit
}

// cpuModel reads the CPU model name from /proc/cpuinfo (linux);
// best-effort elsewhere.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}
