package perf

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"bce/internal/fabric"
	"bce/internal/population"
	"bce/internal/scenario"
)

// StudySuite returns the distributed population-study benchmarks: the
// fabric measured end to end, so coordinator/merge overhead shows up in
// the same ledger trajectory as the kernel. Not part of the CI alloc
// gate.
func StudySuite() []Bench {
	return []Bench{
		{Name: "study_sharded", Doc: "sharded population study through the fabric: httptest coordinator, one worker folding 2 shards (8 tiny scenarios, 2 combos)", F: BenchStudySharded},
	}
}

// shardedScenarios is the fixed per-iteration scenario count of the
// study_sharded bench; the scen/s metric divides by it.
const shardedScenarios = 8

// BenchStudySharded measures a whole sharded study per iteration:
// coordinator with a persistence dir behind a real HTTP server, one
// worker leasing and folding both shards (checkpointing to disk as it
// goes), shard reports, and the final merge. The scenarios are tiny
// (0.02 emulated days), so the fabric's lease/report/checkpoint/merge
// overhead is a visible share of the time rather than pure kernel
// noise.
func BenchStudySharded(b *testing.B) {
	spec := fabric.Spec{
		Seed: 7,
		Combos: []population.Combo{
			{Sched: "JS-LOCAL", Fetch: "JF-ORIG"},
			{Sched: "JS-WRR", Fetch: "JF-HYSTERESIS"},
		},
		Population:      scenario.PopulationParams{DurationDays: 0.02},
		Scenarios:       shardedScenarios,
		Shards:          2,
		CheckpointEvery: 2,
	}
	//bce:ctxshim a benchmark is a call-tree root; there is no caller context to thread
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "bench-fabric-")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		coord, err := fabric.NewCoordinator(spec, fabric.CoordinatorOptions{Dir: filepath.Join(dir, "coord")})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(coord.Handler())
		w := &fabric.Worker{Coord: ts.URL, Name: "bench-worker", Dir: filepath.Join(dir, "worker")}
		if err := w.Run(ctx); err != nil {
			b.Fatal(err)
		}
		st, err := coord.Result()
		if err != nil {
			b.Fatal(err)
		}
		if st.Done != shardedScenarios {
			b.Fatalf("merged study folded %d scenarios, want %d", st.Done, shardedScenarios)
		}
		ts.Close()

		b.StopTimer()
		_ = os.RemoveAll(dir) //bce:errok best-effort temp cleanup outside the timed section
		b.StartTimer()
	}
	b.ReportMetric(float64(shardedScenarios*b.N)/b.Elapsed().Seconds(), "scen/s")
}
