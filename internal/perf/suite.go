package perf

import (
	"context"
	"fmt"
	"testing"

	"bce"
	"bce/internal/experiments"
	"bce/internal/fetch"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/rrsim"
	"bce/internal/sched"
	"bce/internal/sim"
)

// sink defeats dead-code elimination in micro-benchmarks.
var sink int

var benchSeeds = []int64{1}

// HotSuite returns the kernel hot-path benchmarks: the end-to-end
// scenario-day plus micro-benchmarks of each inner loop the speed
// campaign targets. These are the entries CI gates on.
func HotSuite() []Bench {
	return []Bench{
		{Name: "emulation_day", Doc: "one emulated day, 4-CPU 2-project host (end-to-end kernel)", F: BenchEmulationDay},
		{Name: "jobheavy_fleet", Doc: "quarter day with a 1000+ task queue (rrsim-dominated)", F: BenchJobHeavyFleet},
		{Name: "runbatch16_w4", Doc: "16 scenario-days through the batch engine, 4 workers", F: BenchRunBatch16},
		{Name: "sched_enforce", Doc: "one scheduling pass over a 256-task queue", F: BenchSchedEnforce},
		{Name: "fetch_decide", Doc: "all three fetch policies over 16 projects", F: BenchFetchDecide},
		{Name: "rrsim_pass", Doc: "one round-robin simulation pass, 600 jobs, 2 projects", F: BenchRRSimPass},
		{Name: "sim_eventloop", Doc: "event kernel under a client-like timer/reschedule pattern", F: BenchSimEventLoop},
	}
}

// FigureSuite returns the per-figure reproduction benchmarks. Each
// regenerates one figure of the paper and reports its headline values
// as custom metrics, so a ledger entry doubles as a reproduction
// record.
func FigureSuite() []Bench {
	return []Bench{
		{Name: "fig1", Doc: "Figure 1: resource share over combined resources", F: BenchFig1},
		{Name: "fig2", Doc: "Figure 2: round-robin simulation busy-time trace", F: BenchFig2},
		{Name: "fig3", Doc: "Figure 3: EDF vs WRR wasted processing", F: BenchFig3},
		{Name: "fig4", Doc: "Figure 4: global accounting share violation", F: BenchFig4},
		{Name: "fig5", Doc: "Figure 5: fetch hysteresis RPCs and monotony", F: BenchFig5},
		{Name: "fig6", Doc: "Figure 6: REC half-life share violation", F: BenchFig6},
	}
}

// AllSuite returns every declared benchmark, hot paths first.
func AllSuite() []Bench {
	all := append(HotSuite(), FigureSuite()...)
	all = append(all, ServeSuite()...)
	return append(all, StudySuite()...)
}

// Select resolves a suite spec: "hot", "figures", "serve", "study",
// "all", or a comma-separated list of benchmark names from AllSuite.
func Select(spec string) ([]Bench, error) {
	switch spec {
	case "", "hot":
		return HotSuite(), nil
	case "figures":
		return FigureSuite(), nil
	case "serve":
		return ServeSuite(), nil
	case "study":
		return StudySuite(), nil
	case "all":
		return AllSuite(), nil
	}
	byName := make(map[string]Bench)
	for _, bn := range AllSuite() {
		byName[bn.Name] = bn
	}
	var out []Bench
	for _, name := range splitComma(spec) {
		bn, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("perf: unknown benchmark %q (want hot, figures, all, or names from `bcectl bench run -list`)", name)
		}
		out = append(out, bn)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// dayScenario is the canonical end-to-end workload: one day of a 4-CPU
// two-project host. The ≥2× campaign target is measured on this bench's
// scen/s metric.
func dayScenario(seed int64) *bce.Scenario {
	return &bce.Scenario{
		Name: "bench", DurationDays: 1, Seed: seed,
		Host: bce.HostJSON{NCPU: 4, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 4},
		Projects: []bce.ProjectJSON{
			{Name: "a", Share: 100, Apps: []bce.AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400}}},
			{Name: "b", Share: 100, Apps: []bce.AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 2400, LatencySecs: 86400}}},
		},
	}
}

// BenchEmulationDay measures raw emulator speed: one emulated day of a
// 4-CPU, two-project host per iteration. The scen/s metric is
// scenarios per second; the bench is single-threaded, so it is also
// scenarios per second per core.
func BenchEmulationDay(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bce.Run(dayScenario(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events), "events/day")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scen/s")
}

// BenchJobHeavyFleet measures the emulator on a job-heavy queue: a deep
// work buffer of short jobs keeps 1000+ tasks queued, so every
// scheduling point pays the round-robin simulation over the full queue.
func BenchJobHeavyFleet(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &bce.Scenario{
			Name: "jobheavy", DurationDays: 0.25, Seed: 1,
			Host: bce.HostJSON{NCPU: 4, CPUGFlops: 1, MinQueueHours: 36, MaxQueueHours: 48},
			Projects: []bce.ProjectJSON{
				{Name: "a", Share: 100, Apps: []bce.AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 600, LatencySecs: 4 * 86400}}},
				{Name: "b", Share: 100, Apps: []bce.AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 600, LatencySecs: 4 * 86400}}},
			},
		}
		res, err := bce.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events), "events")
			b.ReportMetric(float64(res.Metrics.CompletedJobs), "jobs")
		}
	}
}

// BenchRunBatch16 measures the parallel batch engine on a fixed 16-run
// workload (one emulated day each, 2-CPU host) with 4 workers.
func BenchRunBatch16(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scns := make([]*bce.Scenario, 16)
		for j := range scns {
			s := dayScenario(bce.DeriveSeed(int64(i), j))
			s.Name = fmt.Sprintf("batch-%d", j)
			s.Host.NCPU = 2
			scns[j] = s
		}
		//bce:ctxshim a benchmark is a call-tree root; there is no caller context to thread
		results, err := bce.RunBatch(context.Background(), scns, bce.WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// benchTasks builds a deterministic 256-task queue mixing projects,
// states, deadlines and CPU/GPU usage, shaped like a busy client's.
func benchTasks(n int) []*job.Task {
	tasks := make([]*job.Task, 0, n)
	for i := 0; i < n; i++ {
		t := &job.Task{
			Name:        fmt.Sprintf("t%d", i),
			Project:     i % 8,
			Usage:       job.Usage{AvgCPUs: 1, MemBytes: 50e6},
			Duration:    1200,
			EstDuration: 1200,
			ReceivedAt:  float64(i % 97),
			Deadline:    86400 + float64((i*2654435761)%100000),
		}
		if i%5 == 0 {
			t.Usage = job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1, MemBytes: 100e6}
		}
		if i%3 == 0 {
			t.State = job.Running
			t.StartedAt = 500
		}
		tasks = append(tasks, t)
	}
	return tasks
}

// BenchSchedEnforce measures one job-scheduling pass (build the ordered
// job list, scan it) over a 256-task queue.
func BenchSchedEnforce(b *testing.B) {
	h := host.StdHost(4, 1e9, 1, 1e10)
	in := sched.Input{
		Policy:   sched.JSGlobal,
		Hardware: &h.Hardware,
		Now:      1000,
		Tasks:    benchTasks(256),
		Endangered: func(t *job.Task) bool {
			return int64(t.Deadline)%3 == 0
		},
		Prio: func(p int, t host.ProcType) float64 {
			return -float64(p%7) - 0.1*float64(t)
		},
		GPUAllowed: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := sched.Enforce(in)
		sink = len(dec.Run)
	}
}

// benchSupplier is a closure-free fetch.Supplier for the fetch bench:
// every project supplies CPU work, even-indexed ones also GPU work.
type benchSupplier struct{ cpuOnly bool }

func (s benchSupplier) SuppliesType(t host.ProcType) bool {
	return t == host.CPU || !s.cpuOnly
}

// BenchFetchDecide measures all three fetch policies over a 16-project
// view with CPU and GPU shortfalls.
func BenchFetchDecide(b *testing.B) {
	h := host.StdHost(4, 1e9, 1, 1e10)
	rr := &rrsim.Result{}
	rr.ShortfallMin[host.CPU] = 3600
	rr.ShortfallMax[host.CPU] = 7200
	rr.ShortfallMax[host.NvidiaGPU] = 1800
	rr.IdleNow[host.CPU] = 1
	rr.Saturated[host.CPU] = 600
	views := make([]fetch.ProjectView, 16)
	for p := range views {
		views[p] = fetch.ProjectView{
			Share:     100,
			PrioFetch: -float64(p % 5),
			Supplies:  benchSupplier{cpuOnly: p%2 != 0},
		}
	}
	in := fetch.Input{
		Now: 1000, Hardware: &h.Hardware, RR: rr,
		MinQueue: 3600, MaxQueue: 14400, Projects: views,
	}
	kinds := []fetch.PolicyKind{fetch.JFOrig, fetch.JFHysteresis, fetch.JFSpread}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range kinds {
			plan := fetch.Decide(k, in)
			sink = plan.Project
		}
	}
}

// BenchRRSimPass measures one round-robin simulation pass over a
// 600-job, 2-project queue with a persistent Simulator (the client's
// usage pattern).
func BenchRRSimPass(b *testing.B) {
	h := host.StdHost(4, 1e9, 1, 1e10)
	in := rrsim.Input{
		Now:        0,
		Hardware:   &h.Hardware,
		Shares:     []float64{100, 100},
		HorizonMin: 3600,
		HorizonMax: 14400,
	}
	for t := range in.OnFrac {
		in.OnFrac[t] = 1
	}
	jobs := make([]*rrsim.Job, 0, 600)
	for i := 0; i < 600; i++ {
		j := &rrsim.Job{
			Project:   i % 2,
			Type:      host.CPU,
			Instances: 1,
			Remaining: 300 + float64((i*2654435761)%1200),
			Deadline:  4*86400 + float64(i),
		}
		if i%7 == 0 {
			j.Type = host.NvidiaGPU
		}
		jobs = append(jobs, j)
	}
	in.Jobs = jobs
	s := rrsim.New()
	s.Run(in) // warm the simulator's buffers so allocs/op is steady-state even at -benchtime 1x
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Run(in)
		sink = res.NumEndangered
	}
}

// BenchSimEventLoop measures the discrete-event kernel under the
// client's timer pattern: many periodic chains (availability channels,
// checkpoints, completions) that each coalesce a shared tick timer the
// way scheduleTick does.
func BenchSimEventLoop(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		var tick *sim.Timer
		nticks := 0
		tickFn := func() {
			t := tick
			tick = nil
			s.Recycle(t)
			nticks++
		}
		scheduleTick := func(delay float64) {
			at := s.Now() + delay
			if tick != nil {
				if tick.At() <= at {
					return
				}
				s.Move(tick, at)
				return
			}
			tick = s.At(at, tickFn)
		}
		for c := 0; c < 64; c++ {
			c := c
			period := 50 + float64(c)
			var fire func()
			fire = func() {
				scheduleTick(0.25 + float64(c%4))
				s.Post(period, fire)
			}
			s.Post(period, fire)
		}
		s.RunUntil(20000)
		sink = nticks
	}
}

// BenchFig1 regenerates Figure 1 (resource share applies to the host's
// combined processing resources).
func BenchFig1(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Y["total"][0], "A_GFLOPS")
		b.ReportMetric(fig.Y["total"][1], "B_GFLOPS")
		b.ReportMetric(fig.Y["CPU"][0], "A_CPU_GFLOPS")
		b.ReportMetric(fig.Y["GPU"][1], "B_GPU_GFLOPS")
	}
}

// BenchFig2 regenerates Figure 2 (round-robin simulation busy-time
// prediction).
func BenchFig2(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure2()
		b.ReportMetric(float64(len(fig.X)), "trace_steps")
	}
}

// BenchFig3 regenerates Figure 3 (EDF scheduling reduces wasted
// processing).
func BenchFig3(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure3(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.X) - 1
		b.ReportMetric(fig.Y["JS-WRR"][0], "wrr_wasted_slack0")
		b.ReportMetric(fig.Y["JS-LOCAL"][0], "local_wasted_slack0")
		b.ReportMetric(fig.Y["JS-WRR"][last], "wrr_wasted_slackmax")
		b.ReportMetric(fig.Y["JS-LOCAL"][last], "local_wasted_slackmax")
	}
}

// BenchFig4 regenerates Figure 4 (global accounting reduces share
// violation).
func BenchFig4(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure4(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Y["JS-LOCAL"][0], "local_violation")
		b.ReportMetric(fig.Y["JS-GLOBAL"][0], "global_violation")
	}
}

// BenchFig5 regenerates Figure 5 (fetch hysteresis reduces RPCs per
// job, increases monotony).
func BenchFig5(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure5(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Y["JF-ORIG"][0], "orig_rpcs_per_job")
		b.ReportMetric(fig.Y["JF-HYSTERESIS"][0], "hyst_rpcs_per_job")
		b.ReportMetric(fig.Y["JF-ORIG"][1], "orig_monotony")
		b.ReportMetric(fig.Y["JF-HYSTERESIS"][1], "hyst_monotony")
	}
}

// BenchFig6 regenerates Figure 6 (longer REC half-life reduces share
// violation with long low-slack jobs).
func BenchFig6(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure6(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		ys := fig.Y["JS-REC"]
		b.ReportMetric(ys[0], "violation_shortest_halflife")
		b.ReportMetric(ys[len(ys)-1], "violation_longest_halflife")
	}
}
