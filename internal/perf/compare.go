package perf

import (
	"fmt"
	"strings"
)

// Thresholds sets the noise tolerance for Compare, as fractional
// slowdowns. A negative value disables that axis entirely — CI runs on
// heterogeneous machines gate with Time disabled and Allocs enabled,
// because allocation counts are a property of the code, not the
// hardware.
type Thresholds struct {
	// Time flags a regression when ns/op grows by more than this
	// fraction over the baseline.
	Time float64
	// Allocs flags a regression when allocs/op grows by more than this
	// fraction (plus half an allocation, so exact-zero baselines don't
	// trip on rounding).
	Allocs float64
}

// DefaultThresholds tolerates 20% wall-time jitter and 10% allocation
// growth (cross-toolchain drift; same-toolchain counts are exact for a
// deterministic emulator).
var DefaultThresholds = Thresholds{Time: 0.20, Allocs: 0.10}

// Status classifies one benchmark's baseline-to-current delta.
type Status string

const (
	// StatusOK means within the noise thresholds.
	StatusOK Status = "ok"
	// StatusFaster means ns/op improved beyond the time threshold.
	StatusFaster Status = "faster"
	// StatusRegression means a gated axis exceeded its threshold.
	StatusRegression Status = "regression"
	// StatusNew means the benchmark has no baseline entry yet.
	StatusNew Status = "new"
	// StatusRemoved means the baseline entry is absent from the
	// current run (informational; partial-suite runs cause this).
	StatusRemoved Status = "removed"
)

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name      string
	Status    Status
	OldNs     float64
	NewNs     float64
	OldAllocs int64
	NewAllocs int64
	// Reason says which axis regressed and by how much; empty unless
	// Status is StatusRegression.
	Reason string
}

// TimeRatio returns NewNs/OldNs, or 0 when there is no baseline.
func (d Delta) TimeRatio() float64 {
	if d.OldNs <= 0 {
		return 0
	}
	return d.NewNs / d.OldNs
}

// Report is the outcome of comparing a fresh run against a baseline
// ledger.
type Report struct {
	BaselineStamp string
	CurrentStamp  string
	Thresholds    Thresholds
	// SameHost notes whether the two ledgers share a host fingerprint;
	// cross-host wall-time ratios are printed but should not be gated.
	SameHost bool
	Deltas   []Delta
}

// Compare diffs current against base under the given thresholds.
// Deltas follow current's entry order, with removed baseline entries
// appended in baseline order.
func Compare(base, current *Ledger, th Thresholds) *Report {
	r := &Report{
		BaselineStamp: base.Stamp,
		CurrentStamp:  current.Stamp,
		Thresholds:    th,
		SameHost:      base.Host == current.Host,
	}
	for _, cur := range current.Entries {
		old := base.Entry(cur.Name)
		if old == nil {
			r.Deltas = append(r.Deltas, Delta{
				Name: cur.Name, Status: StatusNew,
				NewNs: cur.NsPerOp, NewAllocs: cur.AllocsPerOp,
			})
			continue
		}
		d := Delta{
			Name:      cur.Name,
			Status:    StatusOK,
			OldNs:     old.NsPerOp,
			NewNs:     cur.NsPerOp,
			OldAllocs: old.AllocsPerOp,
			NewAllocs: cur.AllocsPerOp,
		}
		var reasons []string
		if th.Time >= 0 && old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+th.Time) {
			reasons = append(reasons, fmt.Sprintf("time %.0f→%.0f ns/op (%.2fx > 1+%.2f)",
				old.NsPerOp, cur.NsPerOp, cur.NsPerOp/old.NsPerOp, th.Time))
		}
		if th.Allocs >= 0 && float64(cur.AllocsPerOp) > float64(old.AllocsPerOp)*(1+th.Allocs)+0.5 {
			reasons = append(reasons, fmt.Sprintf("allocs %d→%d per op (> %.1f)",
				old.AllocsPerOp, cur.AllocsPerOp, float64(old.AllocsPerOp)*(1+th.Allocs)+0.5))
		}
		switch {
		case len(reasons) > 0:
			d.Status = StatusRegression
			d.Reason = strings.Join(reasons, "; ")
		case th.Time >= 0 && old.NsPerOp > 0 && cur.NsPerOp < old.NsPerOp*(1-th.Time):
			d.Status = StatusFaster
		}
		r.Deltas = append(r.Deltas, d)
	}
	for _, old := range base.Entries {
		if current.Entry(old.Name) == nil {
			r.Deltas = append(r.Deltas, Delta{
				Name: old.Name, Status: StatusRemoved,
				OldNs: old.NsPerOp, OldAllocs: old.AllocsPerOp,
			})
		}
	}
	return r
}

// Regressions returns the deltas that failed a gated axis.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Status == StatusRegression {
			out = append(out, d)
		}
	}
	return out
}

// Gate returns nil when no benchmark regressed, and otherwise an error
// naming every regression. New and removed benchmarks never fail the
// gate: adding a benchmark must not require a ledger in the same
// commit, and partial-suite runs must be comparable.
func (r *Report) Gate() error {
	regs := r.Regressions()
	if len(regs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "perf: %d benchmark(s) regressed vs baseline %s:", len(regs), r.BaselineStamp)
	for _, d := range regs {
		fmt.Fprintf(&b, "\n  %s: %s", d.Name, d.Reason)
	}
	return fmt.Errorf("%s", b.String())
}

// Table renders the report as an aligned text table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline %s  →  current %s", r.BaselineStamp, r.CurrentStamp)
	if !r.SameHost {
		b.WriteString("  (different host: wall-time ratios are not comparable)")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s %-10s %14s %14s %7s %9s %9s\n",
		"benchmark", "status", "old ns/op", "new ns/op", "ratio", "old alloc", "new alloc")
	for _, d := range r.Deltas {
		ratio := "-"
		if rt := d.TimeRatio(); rt > 0 {
			ratio = fmt.Sprintf("%.2fx", rt)
		}
		fmt.Fprintf(&b, "%-16s %-10s %14.0f %14.0f %7s %9d %9d\n",
			d.Name, d.Status, d.OldNs, d.NewNs, ratio, d.OldAllocs, d.NewAllocs)
		if d.Reason != "" {
			fmt.Fprintf(&b, "%-16s   ↳ %s\n", "", d.Reason)
		}
	}
	return b.String()
}
