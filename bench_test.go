package bce_test

// One benchmark per figure in the paper's evaluation (§5), each
// regenerating the figure's data and reporting its headline numbers as
// custom benchmark metrics, plus micro-benchmarks of the emulator
// itself. Run with:
//
//	go test -bench=. -benchmem
//
// The hot-path and per-figure benchmarks are DECLARED in internal/perf
// (the ledger suite `bcectl bench run` executes); the Benchmark*
// functions here are thin wrappers, so a human's `go test -bench` run
// and the ledger's are the same code. Benchmarks that only make sense
// interactively (worker scaling, policy ablations) live here alone;
// all report allocations and exclude setup from the timed section.
//
// The per-figure benches report the reproduced values so a bench run
// doubles as a reproduction record (see EXPERIMENTS.md).

import (
	"context"
	"fmt"
	"testing"

	"bce"
	"bce/internal/emserver"
	"bce/internal/experiments"
	"bce/internal/fetch"
	"bce/internal/fleet"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/perf"
	"bce/internal/project"
	"bce/internal/sched"
)

// Ledger-suite wrappers: the definitions live in internal/perf so
// `bcectl bench run` measures exactly what `go test -bench` does.

func BenchmarkFig1(b *testing.B) { perf.BenchFig1(b) }
func BenchmarkFig2(b *testing.B) { perf.BenchFig2(b) }
func BenchmarkFig3(b *testing.B) { perf.BenchFig3(b) }
func BenchmarkFig4(b *testing.B) { perf.BenchFig4(b) }
func BenchmarkFig5(b *testing.B) { perf.BenchFig5(b) }
func BenchmarkFig6(b *testing.B) { perf.BenchFig6(b) }

// BenchmarkEmulationDay measures raw emulator speed: one emulated day
// of a 4-CPU, two-project host per iteration.
func BenchmarkEmulationDay(b *testing.B) { perf.BenchEmulationDay(b) }

// BenchmarkRRSimJobHeavyFleet measures the emulator on a job-heavy
// queue: a deep work buffer of short jobs keeps 1000+ tasks queued, so
// every scheduling point pays the round-robin simulation over the full
// queue. This is the end-to-end view of internal/rrsim's
// BenchmarkRRSim/jobheavy (which isolates one simulation pass).
func BenchmarkRRSimJobHeavyFleet(b *testing.B) { perf.BenchJobHeavyFleet(b) }

// Job-service (internal/serve) wrappers: cache-hit cost, in-process
// async ticket round-trip, and HTTP submit→poll cycles through the
// load generator.
func BenchmarkServeCacheHit(b *testing.B)   { perf.BenchServeCacheHit(b) }
func BenchmarkServeSubmitPoll(b *testing.B) { perf.BenchServeSubmitPoll(b) }
func BenchmarkServeLoadgen(b *testing.B)    { perf.BenchServeLoadgen(b) }

// BenchmarkRunBatch measures the parallel execution engine on a fixed
// 16-run workload (one emulated day each) across worker counts. On a
// multi-core machine the runs/sec metric should scale until the worker
// count exceeds the cores. (The ledger tracks only the 4-worker point,
// as runbatch16_w4.)
func BenchmarkRunBatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				scns := make([]*bce.Scenario, 16)
				for j := range scns {
					scns[j] = &bce.Scenario{
						Name: fmt.Sprintf("batch-%d", j), DurationDays: 1,
						Seed: bce.DeriveSeed(int64(i), j),
						Host: bce.HostJSON{NCPU: 2, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 4},
						Projects: []bce.ProjectJSON{
							{Name: "a", Share: 100, Apps: []bce.AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400}}},
							{Name: "b", Share: 100, Apps: []bce.AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 2400, LatencySecs: 86400}}},
						},
					}
				}
				b.StartTimer()
				results, err := bce.RunBatch(context.Background(), scns, bce.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkScenario4Policies measures the cost of the paper's largest
// scenario (20 projects, mixed CPU/GPU) under both fetch policies.
func BenchmarkScenario4Policies(b *testing.B) {
	for _, kind := range []fetch.PolicyKind{fetch.JFOrig, fetch.JFHysteresis} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := experiments.Scenario4(kind, int64(i))
				cfg.Duration = 86400 // one day per iteration
				if _, err := bce.RunConfig(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedPolicies measures a day of scenario 1 under each job
// scheduling policy (the fig-3 ablation axis).
func BenchmarkSchedPolicies(b *testing.B) {
	for _, p := range []sched.Policy{sched.JSWRR, sched.JSLocal, sched.JSGlobal} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := experiments.Scenario1(1500, p, int64(i))
				cfg.Duration = 86400
				if _, err := bce.RunConfig(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransferPolicies is an ablation for the file-transfer
// extension: a slow link with mixed data-heavy and compute-heavy
// projects under each transfer-ordering policy. Reported metric:
// deadline misses per emulated day.
func BenchmarkTransferPolicies(b *testing.B) {
	for _, policy := range []string{"fifo", "smallest-first", "edf"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			b.ReportAllocs()
			missed := 0
			for i := 0; i < b.N; i++ {
				s := &bce.Scenario{
					Name: "xfer-bench", DurationDays: 1, Seed: int64(i),
					Host: bce.HostJSON{
						NCPU: 2, CPUGFlops: 2,
						MinQueueHours: 1, MaxQueueHours: 4,
						DownMbps: 8, UpMbps: 8,
					},
					Projects: []bce.ProjectJSON{
						{Name: "mix", Share: 100, Apps: []bce.AppJSON{
							{Name: "urgent", NCPUs: 1, MeanSecs: 600, LatencySecs: 1800,
								InputMB: 300, OutputMB: 5},
							{Name: "bulk", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400,
								InputMB: 100, OutputMB: 5},
						}},
					},
					Policies: bce.Policies{Transfers: policy},
				}
				res, err := bce.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				missed += res.Metrics.MissedJobs
			}
			b.ReportMetric(float64(missed)/float64(b.N), "missed/day")
		})
	}
}

// BenchmarkAblationDeadlineMargin sweeps the endangered-classification
// margin in scenario 1 — the stabilisation knob DESIGN.md documents.
func BenchmarkAblationDeadlineMargin(b *testing.B) {
	for _, margin := range []float64{-1, 60, 120, 300} {
		margin := margin
		name := "margin0"
		if margin > 0 {
			name = fmt.Sprintf("margin%d", int(margin))
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			wasted := 0.0
			for i := 0; i < b.N; i++ {
				cfg := experiments.Scenario1(1200, sched.JSLocal, int64(i))
				cfg.Duration = 2 * 86400
				cfg.DeadlineMargin = margin
				res, err := bce.RunConfig(cfg)
				if err != nil {
					b.Fatal(err)
				}
				wasted += res.Metrics.WastedFraction
			}
			b.ReportMetric(wasted/float64(b.N), "wasted_frac")
		})
	}
}

// BenchmarkAblationCheckpointPeriod sweeps how often applications
// checkpoint; rarely-checkpointing apps lose more work to preemption.
func BenchmarkAblationCheckpointPeriod(b *testing.B) {
	for _, cp := range []float64{-1, 60, 600, 3600} {
		cp := cp
		name := "never"
		if cp > 0 {
			name = fmt.Sprintf("%ds", int(cp))
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			lost := 0.0
			for i := 0; i < b.N; i++ {
				s := &bce.Scenario{
					Name: "cp-bench", DurationDays: 1, Seed: int64(i),
					Host: bce.HostJSON{NCPU: 1, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 3},
					Projects: []bce.ProjectJSON{
						{Name: "a", Share: 100, Apps: []bce.AppJSON{{
							Name: "x", NCPUs: 1, MeanSecs: 4000, LatencySecs: 864000, CheckpointS: cp,
						}}},
						{Name: "b", Share: 100, Apps: []bce.AppJSON{{
							Name: "y", NCPUs: 1, MeanSecs: 4000, LatencySecs: 864000, CheckpointS: cp,
						}}},
					},
				}
				res, err := bce.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				lost += res.Metrics.LostFLOPSsec / 1e9
			}
			b.ReportMetric(lost/float64(b.N), "lost_cpu_sec")
		})
	}
}

// BenchmarkEmServer measures the EmBOINC-style server-side emulation
// across replication levels, reporting validated workunits per day and
// the waste fraction.
func BenchmarkEmServer(b *testing.B) {
	for _, repl := range []int{1, 2, 3} {
		repl := repl
		b.Run(fmt.Sprintf("replication%d", repl), func(b *testing.B) {
			b.ReportAllocs()
			var thr, waste float64
			for i := 0; i < b.N; i++ {
				st := emserver.Run(emserver.Params{
					Seed:           int64(i),
					NHosts:         100,
					Duration:       4 * 86400,
					TargetNResults: repl,
					MinQuorum:      repl,
				})
				thr += st.Throughput(4 * 86400)
				waste += st.WasteFraction()
			}
			b.ReportMetric(thr/float64(b.N), "validWU/day")
			b.ReportMetric(waste/float64(b.N), "waste_frac")
		})
	}
}

// BenchmarkFleetPlanning measures the multi-host share planner plus a
// fleet evaluation, reporting the violation improvement over uniform
// shares; fleet construction happens off the clock.
func BenchmarkFleetPlanning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := benchFleet()
		b.StartTimer()
		uni, err := f.Evaluate(fleet.Uniform(f), 86400, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		plan, err := fleet.Optimize(f)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := f.Evaluate(plan, 86400, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(uni.GlobalViolation, "uniform_violation")
		b.ReportMetric(opt.GlobalViolation, "planned_violation")
	}
}

func benchFleet() *fleet.Fleet {
	mk := func(ncpu int, cpuF float64, ngpu int, gpuF float64) *host.Host {
		h := host.StdHost(ncpu, cpuF, ngpu, gpuF)
		h.Prefs.MinQueue = 1200
		h.Prefs.MaxQueue = 3600
		return h
	}
	cpuApp := project.AppSpec{Name: "cpu", Usage: job.Usage{AvgCPUs: 1},
		MeanDuration: 1000, LatencyBound: 864000, CheckpointPeriod: 60}
	gpuApp := project.AppSpec{Name: "gpu",
		Usage:        job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1},
		MeanDuration: 500, LatencyBound: 864000, CheckpointPeriod: 60}
	return &fleet.Fleet{
		Hosts: []*host.Host{mk(4, 1e9, 1, 10e9), mk(8, 1e9, 0, 0)},
		Projects: []project.Spec{
			{Name: "A", Share: 100, Apps: []project.AppSpec{cpuApp, gpuApp}},
			{Name: "B", Share: 100, Apps: []project.AppSpec{cpuApp}},
		},
	}
}
