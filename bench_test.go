package bce

// One benchmark per figure in the paper's evaluation (§5), each
// regenerating the figure's data and reporting its headline numbers as
// custom benchmark metrics, plus micro-benchmarks of the emulator
// itself. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benches report the reproduced values so a bench run
// doubles as a reproduction record (see EXPERIMENTS.md).

import (
	"context"
	"fmt"
	"testing"

	"bce/internal/emserver"
	"bce/internal/experiments"
	"bce/internal/fetch"
	"bce/internal/fleet"
	"bce/internal/host"
	"bce/internal/job"
	"bce/internal/project"
	"bce/internal/sched"
)

var benchSeeds = []int64{1}

// BenchmarkFig1 regenerates Figure 1 (resource share applies to the
// host's combined processing resources). Reported metrics: achieved
// GFLOPS per project (expect ~15 each).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Y["total"][0], "A_GFLOPS")
		b.ReportMetric(fig.Y["total"][1], "B_GFLOPS")
		b.ReportMetric(fig.Y["CPU"][0], "A_CPU_GFLOPS")
		b.ReportMetric(fig.Y["GPU"][1], "B_GPU_GFLOPS")
	}
}

// BenchmarkFig2 regenerates Figure 2 (round-robin simulation busy-time
// prediction). Reported metric: trace steps.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Figure2()
		b.ReportMetric(float64(len(fig.X)), "trace_steps")
	}
}

// BenchmarkFig3 regenerates Figure 3 (EDF scheduling reduces wasted
// processing). Reported metrics: wasted fraction at zero slack and at
// the largest slack for JS-WRR vs JS-LOCAL.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure3(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.X) - 1
		b.ReportMetric(fig.Y["JS-WRR"][0], "wrr_wasted_slack0")
		b.ReportMetric(fig.Y["JS-LOCAL"][0], "local_wasted_slack0")
		b.ReportMetric(fig.Y["JS-WRR"][last], "wrr_wasted_slackmax")
		b.ReportMetric(fig.Y["JS-LOCAL"][last], "local_wasted_slackmax")
	}
}

// BenchmarkFig4 regenerates Figure 4 (global accounting reduces share
// violation).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure4(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Y["JS-LOCAL"][0], "local_violation")
		b.ReportMetric(fig.Y["JS-GLOBAL"][0], "global_violation")
	}
}

// BenchmarkFig5 regenerates Figure 5 (fetch hysteresis reduces RPCs per
// job, increases monotony).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure5(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Y["JF-ORIG"][0], "orig_rpcs_per_job")
		b.ReportMetric(fig.Y["JF-HYSTERESIS"][0], "hyst_rpcs_per_job")
		b.ReportMetric(fig.Y["JF-ORIG"][1], "orig_monotony")
		b.ReportMetric(fig.Y["JF-HYSTERESIS"][1], "hyst_monotony")
	}
}

// BenchmarkFig6 regenerates Figure 6 (longer REC half-life reduces
// share violation with long low-slack jobs).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure6(benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
		ys := fig.Y["JS-REC"]
		b.ReportMetric(ys[0], "violation_shortest_halflife")
		b.ReportMetric(ys[len(ys)-1], "violation_longest_halflife")
	}
}

// BenchmarkEmulationDay measures raw emulator speed: one emulated day
// of a 4-CPU, two-project host per iteration.
func BenchmarkEmulationDay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := &Scenario{
			Name: "bench", DurationDays: 1, Seed: int64(i),
			Host: HostJSON{NCPU: 4, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 4},
			Projects: []ProjectJSON{
				{Name: "a", Share: 100, Apps: []AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400}}},
				{Name: "b", Share: 100, Apps: []AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 2400, LatencySecs: 86400}}},
			},
		}
		res, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events), "events/day")
		}
	}
}

// BenchmarkRRSimJobHeavyFleet measures the emulator on a job-heavy
// queue: a deep work buffer of short jobs keeps 1000+ tasks queued, so
// every scheduling point pays the round-robin simulation over the full
// queue. This is the end-to-end view of internal/rrsim's
// BenchmarkRRSim/jobheavy (which isolates one simulation pass).
func BenchmarkRRSimJobHeavyFleet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := &Scenario{
			Name: "jobheavy", DurationDays: 0.25, Seed: 1,
			Host: HostJSON{NCPU: 4, CPUGFlops: 1, MinQueueHours: 36, MaxQueueHours: 48},
			Projects: []ProjectJSON{
				{Name: "a", Share: 100, Apps: []AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 600, LatencySecs: 4 * 86400}}},
				{Name: "b", Share: 100, Apps: []AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 600, LatencySecs: 4 * 86400}}},
			},
		}
		res, err := Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Events), "events")
			b.ReportMetric(float64(res.Metrics.CompletedJobs), "jobs")
		}
	}
}

// BenchmarkRunBatch measures the parallel execution engine on a fixed
// 16-run workload (one emulated day each) across worker counts. On a
// multi-core machine the runs/sec metric should scale until the worker
// count exceeds the cores.
func BenchmarkRunBatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scns := make([]*Scenario, 16)
				for j := range scns {
					scns[j] = &Scenario{
						Name: fmt.Sprintf("batch-%d", j), DurationDays: 1,
						Seed: DeriveSeed(int64(i), j),
						Host: HostJSON{NCPU: 2, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 4},
						Projects: []ProjectJSON{
							{Name: "a", Share: 100, Apps: []AppJSON{{Name: "x", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400}}},
							{Name: "b", Share: 100, Apps: []AppJSON{{Name: "y", NCPUs: 1, MeanSecs: 2400, LatencySecs: 86400}}},
						},
					}
				}
				results, err := RunBatch(context.Background(), scns, WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkScenario4Policies measures the cost of the paper's largest
// scenario (20 projects, mixed CPU/GPU) under both fetch policies.
func BenchmarkScenario4Policies(b *testing.B) {
	for _, kind := range []fetch.PolicyKind{fetch.JFOrig, fetch.JFHysteresis} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.Scenario4(kind, int64(i))
				cfg.Duration = 86400 // one day per iteration
				if _, err := RunConfig(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedPolicies measures a day of scenario 1 under each job
// scheduling policy (the fig-3 ablation axis).
func BenchmarkSchedPolicies(b *testing.B) {
	for _, p := range []sched.Policy{sched.JSWRR, sched.JSLocal, sched.JSGlobal} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.Scenario1(1500, p, int64(i))
				cfg.Duration = 86400
				if _, err := RunConfig(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransferPolicies is an ablation for the file-transfer
// extension: a slow link with mixed data-heavy and compute-heavy
// projects under each transfer-ordering policy. Reported metric:
// deadline misses per emulated day.
func BenchmarkTransferPolicies(b *testing.B) {
	for _, policy := range []string{"fifo", "smallest-first", "edf"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			missed := 0
			for i := 0; i < b.N; i++ {
				s := &Scenario{
					Name: "xfer-bench", DurationDays: 1, Seed: int64(i),
					Host: HostJSON{
						NCPU: 2, CPUGFlops: 2,
						MinQueueHours: 1, MaxQueueHours: 4,
						DownMbps: 8, UpMbps: 8,
					},
					Projects: []ProjectJSON{
						{Name: "mix", Share: 100, Apps: []AppJSON{
							{Name: "urgent", NCPUs: 1, MeanSecs: 600, LatencySecs: 1800,
								InputMB: 300, OutputMB: 5},
							{Name: "bulk", NCPUs: 1, MeanSecs: 1200, LatencySecs: 86400,
								InputMB: 100, OutputMB: 5},
						}},
					},
					Policies: Policies{Transfers: policy},
				}
				res, err := Run(s)
				if err != nil {
					b.Fatal(err)
				}
				missed += res.Metrics.MissedJobs
			}
			b.ReportMetric(float64(missed)/float64(b.N), "missed/day")
		})
	}
}

// BenchmarkAblationDeadlineMargin sweeps the endangered-classification
// margin in scenario 1 — the stabilisation knob DESIGN.md documents.
func BenchmarkAblationDeadlineMargin(b *testing.B) {
	for _, margin := range []float64{-1, 60, 120, 300} {
		margin := margin
		name := "margin0"
		if margin > 0 {
			name = fmt.Sprintf("margin%d", int(margin))
		}
		b.Run(name, func(b *testing.B) {
			wasted := 0.0
			for i := 0; i < b.N; i++ {
				cfg := experiments.Scenario1(1200, sched.JSLocal, int64(i))
				cfg.Duration = 2 * 86400
				cfg.DeadlineMargin = margin
				res, err := RunConfig(cfg)
				if err != nil {
					b.Fatal(err)
				}
				wasted += res.Metrics.WastedFraction
			}
			b.ReportMetric(wasted/float64(b.N), "wasted_frac")
		})
	}
}

// BenchmarkAblationCheckpointPeriod sweeps how often applications
// checkpoint; rarely-checkpointing apps lose more work to preemption.
func BenchmarkAblationCheckpointPeriod(b *testing.B) {
	for _, cp := range []float64{-1, 60, 600, 3600} {
		cp := cp
		name := "never"
		if cp > 0 {
			name = fmt.Sprintf("%ds", int(cp))
		}
		b.Run(name, func(b *testing.B) {
			lost := 0.0
			for i := 0; i < b.N; i++ {
				s := &Scenario{
					Name: "cp-bench", DurationDays: 1, Seed: int64(i),
					Host: HostJSON{NCPU: 1, CPUGFlops: 1, MinQueueHours: 1, MaxQueueHours: 3},
					Projects: []ProjectJSON{
						{Name: "a", Share: 100, Apps: []AppJSON{{
							Name: "x", NCPUs: 1, MeanSecs: 4000, LatencySecs: 864000, CheckpointS: cp,
						}}},
						{Name: "b", Share: 100, Apps: []AppJSON{{
							Name: "y", NCPUs: 1, MeanSecs: 4000, LatencySecs: 864000, CheckpointS: cp,
						}}},
					},
				}
				res, err := Run(s)
				if err != nil {
					b.Fatal(err)
				}
				lost += res.Metrics.LostFLOPSsec / 1e9
			}
			b.ReportMetric(lost/float64(b.N), "lost_cpu_sec")
		})
	}
}

// BenchmarkEmServer measures the EmBOINC-style server-side emulation
// across replication levels, reporting validated workunits per day and
// the waste fraction.
func BenchmarkEmServer(b *testing.B) {
	for _, repl := range []int{1, 2, 3} {
		repl := repl
		b.Run(fmt.Sprintf("replication%d", repl), func(b *testing.B) {
			var thr, waste float64
			for i := 0; i < b.N; i++ {
				st := emserver.Run(emserver.Params{
					Seed:           int64(i),
					NHosts:         100,
					Duration:       4 * 86400,
					TargetNResults: repl,
					MinQuorum:      repl,
				})
				thr += st.Throughput(4 * 86400)
				waste += st.WasteFraction()
			}
			b.ReportMetric(thr/float64(b.N), "validWU/day")
			b.ReportMetric(waste/float64(b.N), "waste_frac")
		})
	}
}

// BenchmarkFleetPlanning measures the multi-host share planner plus a
// fleet evaluation, reporting the violation improvement over uniform
// shares.
func BenchmarkFleetPlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFleet()
		uni, err := f.Evaluate(fleet.Uniform(f), 86400, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		plan, err := fleet.Optimize(f)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := f.Evaluate(plan, 86400, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(uni.GlobalViolation, "uniform_violation")
		b.ReportMetric(opt.GlobalViolation, "planned_violation")
	}
}

func benchFleet() *fleet.Fleet {
	mk := func(ncpu int, cpuF float64, ngpu int, gpuF float64) *host.Host {
		h := host.StdHost(ncpu, cpuF, ngpu, gpuF)
		h.Prefs.MinQueue = 1200
		h.Prefs.MaxQueue = 3600
		return h
	}
	cpuApp := project.AppSpec{Name: "cpu", Usage: job.Usage{AvgCPUs: 1},
		MeanDuration: 1000, LatencyBound: 864000, CheckpointPeriod: 60}
	gpuApp := project.AppSpec{Name: "gpu",
		Usage:        job.Usage{AvgCPUs: 0.2, GPUType: host.NvidiaGPU, GPUUsage: 1},
		MeanDuration: 500, LatencyBound: 864000, CheckpointPeriod: 60}
	return &fleet.Fleet{
		Hosts: []*host.Host{mk(4, 1e9, 1, 10e9), mk(8, 1e9, 0, 0)},
		Projects: []project.Spec{
			{Name: "A", Share: 100, Apps: []project.AppSpec{cpuApp, gpuApp}},
			{Name: "B", Share: 100, Apps: []project.AppSpec{cpuApp}},
		},
	}
}
