// Command scengen samples random scenarios from a population model of
// volunteer hosts and optionally runs a Monte-Carlo policy study over
// them — the paper's §6.2 future-work direction ("develop a system,
// perhaps based on Monte-Carlo sampling, to study policies over the
// entire population").
//
// Usage:
//
//	scengen -n 10 -out dir/            write 10 scenario JSON files
//	scengen -study -n 50               compare policies over 50 samples
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bce/internal/scenario"
	"bce/internal/stats"
	"bce/internal/study"
)

func main() {
	var (
		n       = flag.Int("n", 10, "number of scenarios to sample")
		seed    = flag.Int64("seed", 3, "sampler seed")
		outDir  = flag.String("out", "", "directory to write scenario JSON files")
		doStudy = flag.Bool("study", false, "run a Monte-Carlo policy study over the samples")
		days    = flag.Float64("days", 2, "emulation length per sample in the study")
		maxProj = flag.Int("max-projects", 20, "cap on attached projects per host")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	params := scenario.PopulationParams{MaxProjects: *maxProj, DurationDays: *days}
	samples := make([]*scenario.Scenario, *n)
	for i := range samples {
		samples[i] = scenario.Sample(rng, params)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for i, s := range samples {
			path := filepath.Join(*outDir, fmt.Sprintf("scenario_%03d.json", i))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := s.Save(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Println("wrote", path)
		}
	}

	if *doStudy {
		if err := runStudy(samples); err != nil {
			fatal(err)
		}
	} else if *outDir == "" {
		// No output requested: print a summary of the population.
		summarise(samples)
	}
}

// runStudy runs each policy combination on every sample and reports
// population means plus paired per-scenario wins (the Monte-Carlo
// study, implemented and tested in internal/study).
func runStudy(samples []*scenario.Scenario) error {
	res, err := study.Run(samples, study.DefaultCombos())
	if err != nil {
		return err
	}
	fmt.Printf("Monte-Carlo study over %d sampled scenarios\n\n", len(samples))
	fmt.Print(res.Table())
	fmt.Println()
	// Paired wins for the two headline metrics: share violation and
	// RPCs per job.
	fmt.Print(res.WinsTable(2))
	fmt.Println()
	fmt.Print(res.WinsTable(4))
	return nil
}

func summarise(samples []*scenario.Scenario) {
	gpus, sporadic := 0, 0
	var projects stats.Mean
	for _, s := range samples {
		if s.Host.NGPU > 0 {
			gpus++
		}
		if s.Host.Avail.MeanOffHours > 0 {
			sporadic++
		}
		projects.Add(float64(len(s.Projects)))
	}
	fmt.Printf("sampled %d scenarios: %d with GPUs, %d with sporadic availability, %.1f projects/host mean\n",
		len(samples), gpus, sporadic, projects.Mean())
	fmt.Println("use -out DIR to write them, -study to run the Monte-Carlo policy study")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scengen:", err)
	os.Exit(1)
}
