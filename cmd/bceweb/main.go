// Command bceweb serves the emulator's web interface (paper §4.3):
// volunteers paste their BOINC client_state.xml (or a JSON scenario),
// select policies, and get the figures of merit, message log, and an
// SVG timeline. Uploaded inputs are saved for later debugging.
//
// Usage:
//
//	bceweb -addr :8080 -save uploads/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"bce/internal/web"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		save    = flag.String("save", "", "directory to save uploaded scenarios ('' = don't save)")
		timeout = flag.Duration("run-timeout", web.DefaultRunTimeout,
			"wall-clock cap per emulation (0 = only the request context applies)")
	)
	flag.Parse()
	srv := web.NewServer(*save)
	srv.RunTimeout = *timeout
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("bceweb listening on http://%s/\n", *addr)
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "bceweb:", err)
		os.Exit(1)
	}
}
