// Command bceweb serves the emulator's web interface (paper §4.3):
// volunteers paste their BOINC client_state.xml (or a JSON scenario),
// select policies, and get the figures of merit, message log, and an
// SVG timeline. Uploaded inputs are saved for later debugging.
//
// Usage:
//
//	bceweb -addr :8080 -save uploads/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"bce/internal/web"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		save    = flag.String("save", "", "directory to save uploaded scenarios ('' = don't save)")
		timeout = flag.Duration("run-timeout", web.DefaultRunTimeout,
			"wall-clock cap per emulation (0 = only the request context applies)")
	)
	flag.Parse()
	srv := web.NewServer(*save)
	srv.RunTimeout = *timeout

	// Profiling endpoints ride alongside the app so a slow emulation
	// can be profiled in place (go tool pprof http://host/debug/pprof/profile).
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("bceweb listening on http://%s/\n", *addr)
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "bceweb:", err)
		os.Exit(1)
	}
}
