// Command bceweb serves the emulator's web interface (paper §4.3):
// volunteers paste their BOINC client_state.xml (or a JSON scenario),
// select policies, and get the figures of merit, message log, and an
// SVG timeline. Uploaded inputs are saved for later debugging.
//
// Submissions flow through an async job service (internal/serve): a
// bounded queue drained by a fixed worker pool, a content-addressed
// result cache, and explicit load-shedding (429 + Retry-After) when
// the queue is full. Machine clients submit via POST /api/run and poll
// /api/jobs/{id}; browsers get /jobs/{id} progress pages.
//
// Usage:
//
//	bceweb -addr :8080 -save uploads/ -workers 4 -queue 64 -cache 128
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bce/internal/runner"
	"bce/internal/serve"
	"bce/internal/web"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		save    = flag.String("save", "", "directory to save uploaded scenarios ('' = don't save)")
		timeout = flag.Duration("run-timeout", web.DefaultRunTimeout,
			"wall-clock cap per emulation (0 = only the request context applies)")
		workers  = flag.Int("workers", 0, "job-queue worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "queued-job capacity before load-shedding kicks in")
		cache    = flag.Int("cache", 128, "result-cache entries (LRU)")
		syncDays = flag.Float64("sync-days", 2, "emulated-day threshold under which /run completes synchronously")
	)
	flag.Parse()
	srv := web.NewServer(*save)
	srv.RunTimeout = *timeout
	srv.SyncDays = *syncDays
	srv.Svc = serve.New(serve.Config{
		Batch:        runner.Options{Workers: *workers},
		QueueCap:     *queue,
		CacheEntries: *cache,
	})

	// Ctrl-C / SIGTERM drains: stop accepting, cancel the worker pool,
	// wait for in-flight emulations to stop at an event-batch boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)

	// Profiling endpoints ride alongside the app so a slow emulation
	// can be profiled in place (go tool pprof http://host/debug/pprof/profile).
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx) //bce:errok best-effort drain on the way out
	}()
	fmt.Printf("bceweb listening on http://%s/ (%d workers, queue %d, cache %d)\n",
		*addr, srv.Svc.Workers(), srv.Svc.QueueCap(), *cache)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "bceweb:", err)
		os.Exit(1)
	}
	srv.Svc.Wait()
}
