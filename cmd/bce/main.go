// Command bce runs the BOINC client emulator on one scenario and prints
// the figures of merit. It mirrors the paper's BCE binary: input is a
// scenario description (JSON, or a BOINC client_state.xml via -xml),
// plus flags selecting the job scheduling, job fetch and server
// deadline-check policies; output is the metrics report, an optional
// message log of scheduling decisions, and an optional timeline
// visualization (ASCII on stdout or SVG to a file).
//
// Usage:
//
//	bce [flags] scenario.json
//	bce -xml client_state.xml -sched JS-GLOBAL -fetch JF-HYSTERESIS
//	bce -sample 42            # run a randomly sampled scenario
//
// Flags override the scenario file's policy selections.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"bce"
	"bce/internal/metrics"
)

func main() {
	var (
		xmlIn    = flag.String("xml", "", "import a BOINC client_state.xml instead of a JSON scenario")
		sample   = flag.Int64("sample", -1, "run a randomly sampled scenario with this seed (ignores input file)")
		schedP   = flag.String("sched", "", "job scheduling policy: JS-LOCAL, JS-GLOBAL, JS-WRR")
		fetchP   = flag.String("fetch", "", "job fetch policy: JF-ORIG, JF-HYSTERESIS")
		halfLife = flag.Float64("rec-half-life", 0, "REC averaging half-life in seconds (JS-GLOBAL)")
		days     = flag.Float64("days", 0, "override emulation length in days")
		seed     = flag.Int64("seed", -1, "override random seed")
		logOut   = flag.Bool("log", false, "print the message log of scheduling decisions")
		ascii    = flag.Bool("timeline", false, "print an ASCII timeline of processor usage")
		svgOut   = flag.String("svg", "", "write an SVG timeline to this file")
		jsonOut  = flag.Bool("json", false, "print metrics as JSON")
	)
	flag.Parse()

	s, err := loadScenario(*xmlIn, *sample, flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *schedP != "" {
		s.Policies.JobSched = *schedP
	}
	if *fetchP != "" {
		s.Policies.JobFetch = *fetchP
	}
	if *halfLife > 0 {
		s.Policies.RECHalfLife = *halfLife
	}
	if *days > 0 {
		s.DurationDays = *days
	}
	if *seed >= 0 {
		s.Seed = *seed
	}

	cfg, err := s.Config()
	if err != nil {
		fatal(err)
	}
	cfg.RecordTimeline = *ascii || *svgOut != ""
	if *logOut {
		cfg.Log = os.Stderr
	}
	// Ctrl-C stops the emulation between simulator events.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := bce.RunConfigContext(ctx, cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		printJSON(res.Metrics)
	} else {
		printReport(s, res)
	}
	if *ascii && res.Timeline != nil {
		fmt.Println()
		fmt.Print(res.Timeline.ASCII(len(s.Projects), 100))
	}
	if *svgOut != "" && res.Timeline != nil {
		if err := os.WriteFile(*svgOut, []byte(res.Timeline.SVG(1200, 18)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s\n", *svgOut)
	}
}

func loadScenario(xmlPath string, sampleSeed int64, jsonPath string) (*bce.Scenario, error) {
	switch {
	case sampleSeed >= 0:
		return bce.SampleScenario(sampleSeed), nil
	case xmlPath != "":
		f, err := os.Open(xmlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bce.ImportClientState(f)
	case jsonPath != "":
		return bce.LoadScenarioFile(jsonPath)
	}
	return nil, fmt.Errorf("usage: bce [flags] scenario.json (or -xml state.xml, or -sample N); see bce -h")
}

func printReport(s *bce.Scenario, res *bce.Result) {
	m := res.Metrics
	fmt.Printf("scenario: %s  (%d projects, %.3g days, seed %d)\n",
		s.Name, len(s.Projects), s.DurationDays, s.Seed)
	fmt.Printf("policies: sched=%s fetch=%s\n",
		orDefault(s.Policies.JobSched, "JS-LOCAL"), orDefault(s.Policies.JobFetch, "JF-HYSTERESIS"))
	fmt.Println()
	names := metrics.Names()
	for i, v := range m.Values() {
		fmt.Printf("  %-16s %.4f\n", names[i], v)
	}
	fmt.Println()
	fmt.Printf("  jobs completed   %d (%d missed deadline)\n", m.CompletedJobs, m.MissedJobs)
	fmt.Printf("  scheduler RPCs   %d\n", m.RPCs)
	fmt.Printf("  events simulated %d\n", res.Events)
	fmt.Printf("  processing used  %.4g peak-FLOPS-sec of %.4g available\n", m.UsedFLOPSsec, m.AvailFLOPSsec)
	for p, u := range m.UsedByProject {
		frac := 0.0
		if m.UsedFLOPSsec > 0 {
			frac = u / m.UsedFLOPSsec
		}
		fmt.Printf("    %-20s %5.1f%%  (dispatched %d, refused %d)\n",
			s.Projects[p].Name, 100*frac, res.Dispatched[p], res.Refused[p])
	}
}

func printJSON(m bce.Metrics) {
	names := metrics.Names()
	fmt.Print("{")
	for i, v := range m.Values() {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf("%q:%g", names[i], v)
	}
	fmt.Printf(",%q:%d,%q:%d,%q:%d}\n", "jobs", m.CompletedJobs, "missed", m.MissedJobs, "rpcs", m.RPCs)
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bce:", err)
	os.Exit(1)
}
