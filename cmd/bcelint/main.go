// Command bcelint runs BCE's contract-enforcing analyzer suite
// (internal/analyzers) over the module — six determinism rules
// (nowalltime, seededrand, mapiter, ctxpass, seedderive, errdrop),
// three concurrency rules (guardedby, goleak, lockorder), and two
// allocation rules (hotalloc, noretain) — with interprocedural fact
// propagation surfacing laundered violations at the governed call site
// (see DESIGN.md §10). CI runs it as
// `go run ./cmd/bcelint -json -ci -baseline .bcelint-baseline.json ./...`;
// a non-baselined finding exits 1.
//
// With -json, each diagnostic is one JSON object per line (analyzer,
// position, message, call chain) for CI annotations and editors; plain
// text renders the chain indented under the finding.
//
// -baseline FILE suppresses findings recorded in FILE, so a new
// analyzer can land before every pre-existing finding is fixed: CI
// fails only on findings outside the baseline. -write-baseline
// (re)writes FILE from the current findings. Keys are content hashes
// of (analyzer, cwd-relative position, message), so a baseline
// survives checkout moves but not code drift — any change to the
// finding re-surfaces it.
//
// A baseline entry whose finding no longer occurs is stale: the debt
// it recorded was paid, and keeping the entry would mask a future
// regression that happens to hash identically. Stale entries are
// always reported on stderr; with -ci they fail the run (exit 1), so
// the committed baseline can only shrink. -prune-baseline rewrites the
// file keeping exactly the entries that still match.
//
// Analyzers see only non-test Go files — tests may use wall time,
// ad-hoc seeded RNGs, and unguarded scaffolding freely.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bce/internal/analyzers"
)

// jsonPos is a diagnostic or chain-step position in the -json stream.
type jsonPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// jsonStep is one hop of a laundered-fact call chain.
type jsonStep struct {
	Func string  `json:"func"`
	Pos  jsonPos `json:"pos"`
	What string  `json:"what"`
}

// jsonDiag is the one-object-per-line shape CI and editors consume.
type jsonDiag struct {
	Analyzer string     `json:"analyzer"`
	Pos      jsonPos    `json:"pos"`
	Message  string     `json:"message"`
	Chain    []jsonStep `json:"chain,omitempty"`
}

// baselineFile is the committed suppression list: finding key → a
// human-readable summary (the summary is documentation only; matching
// is by key).
type baselineFile struct {
	Findings map[string]string `json:"findings"`
}

// relFile renders a diagnostic's file cwd-relative when possible, so
// the same finding reads (and hashes) identically in CI and local
// checkouts.
func relFile(file string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil {
			return filepath.ToSlash(rel)
		}
	}
	return file
}

// findingKey hashes one diagnostic into its stable baseline key.
func findingKey(d analyzers.Diagnostic) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s:%d:%d\x00%s",
		d.Analyzer, relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message)))
	return fmt.Sprintf("%x", h[:12])
}

func readBaseline(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return bf.Findings, nil
}

func writeBaseline(path string, diags []analyzers.Diagnostic) error {
	findings := map[string]string{}
	for _, d := range diags {
		findings[findingKey(d)] = fmt.Sprintf("%s: %s:%d:%d",
			d.Analyzer, relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column)
	}
	return writeBaselineMap(path, findings)
}

func writeBaselineMap(path string, findings map[string]string) error {
	data, err := json.MarshalIndent(baselineFile{Findings: findings}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	jsonOut := flag.Bool("json", false,
		"emit one JSON diagnostic object per line (analyzer, pos, message, chain)")
	baselinePath := flag.String("baseline", "",
		"suppress findings recorded in this baseline file; fail only on new ones")
	writeBase := flag.Bool("write-baseline", false,
		"rewrite the -baseline file from the current findings and exit 0")
	ciMode := flag.Bool("ci", false,
		"CI mode: stale baseline entries (recorded findings that no longer occur) fail the run")
	pruneBase := flag.Bool("prune-baseline", false,
		"rewrite the -baseline file keeping only entries that still match a finding")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bcelint [-json] [-ci] [-baseline file [-write-baseline|-prune-baseline]] [packages]\n\n")
		for _, rule := range analyzers.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", rule.Analyzer.Name, rule.Analyzer.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyzers.RunSuite("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcelint:", err)
		os.Exit(2)
	}

	if *writeBase {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "bcelint: -write-baseline needs -baseline FILE")
			os.Exit(2)
		}
		if err := writeBaseline(*baselinePath, diags); err != nil {
			fmt.Fprintln(os.Stderr, "bcelint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "bcelint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return
	}

	if *pruneBase && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "bcelint: -prune-baseline needs -baseline FILE")
		os.Exit(2)
	}

	suppressed := 0
	var stale []string
	if *baselinePath != "" {
		base, err := readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcelint:", err)
			os.Exit(2)
		}
		matched := make(map[string]bool, len(base))
		kept := diags[:0]
		for _, d := range diags {
			key := findingKey(d)
			if _, ok := base[key]; ok {
				matched[key] = true
				suppressed++
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
		for key, summary := range base {
			if !matched[key] {
				stale = append(stale, fmt.Sprintf("%s (%s)", key, summary))
			}
		}
		sort.Strings(stale)
		if *pruneBase {
			pruned := make(map[string]string, len(matched))
			for key := range matched {
				pruned[key] = base[key]
			}
			if err := writeBaselineMap(*baselinePath, pruned); err != nil {
				fmt.Fprintln(os.Stderr, "bcelint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "bcelint: pruned %d stale entr%s from %s, kept %d\n",
				len(stale), plural(len(stale), "y", "ies"), *baselinePath, len(pruned))
			stale = nil
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			jd := jsonDiag{
				Analyzer: d.Analyzer,
				Pos:      jsonPos{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column},
				Message:  d.Message,
			}
			for _, s := range d.Chain {
				jd.Chain = append(jd.Chain, jsonStep{
					Func: s.Func,
					Pos:  jsonPos{File: s.Pos.Filename, Line: s.Pos.Line, Col: s.Pos.Column},
					What: s.What,
				})
			}
			if err := enc.Encode(jd); err != nil {
				fmt.Fprintln(os.Stderr, "bcelint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			for _, s := range d.Chain {
				fmt.Printf("\t%s (%s): %s\n", s.Func, s.Pos, s.What)
			}
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "bcelint: %d baselined finding(s) suppressed\n", suppressed)
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "bcelint: stale baseline entry %s no longer matches any finding\n", s)
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "bcelint: %d stale baseline entr%s; run -prune-baseline to remove\n",
			len(stale), plural(len(stale), "y", "ies"))
	}
	fail := len(diags) > 0 || (*ciMode && len(stale) > 0)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bcelint: %d violation(s)\n", len(diags))
	}
	if fail {
		os.Exit(1)
	}
}

// plural selects the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
