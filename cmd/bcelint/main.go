// Command bcelint runs BCE's determinism-enforcing analyzer suite
// (internal/analyzers) over the module: nowalltime, seededrand,
// mapiter and ctxpass. CI runs it as `go run ./cmd/bcelint ./...`; a
// non-empty report exits 1.
//
// Analyzers see only non-test Go files — tests may use wall time and
// ad-hoc seeded RNGs freely.
package main

import (
	"flag"
	"fmt"
	"os"

	"bce/internal/analyzers"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bcelint [packages]\n\n")
		for _, rule := range analyzers.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", rule.Analyzer.Name, rule.Analyzer.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyzers.RunSuite("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcelint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bcelint: %d determinism violation(s)\n", len(diags))
		os.Exit(1)
	}
}
