// Command bcelint runs BCE's determinism-enforcing analyzer suite
// (internal/analyzers) over the module: nowalltime, seededrand,
// mapiter, ctxpass, seedderive and errdrop, with interprocedural fact
// propagation surfacing laundered violations at the governed call site
// (see DESIGN.md §10). CI runs it as `go run ./cmd/bcelint -json ./...`;
// a non-empty report exits 1.
//
// With -json, each diagnostic is one JSON object per line (analyzer,
// position, message, call chain) for CI annotations and editors; plain
// text renders the chain indented under the finding.
//
// Analyzers see only non-test Go files — tests may use wall time and
// ad-hoc seeded RNGs freely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bce/internal/analyzers"
)

// jsonPos is a diagnostic or chain-step position in the -json stream.
type jsonPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// jsonStep is one hop of a laundered-fact call chain.
type jsonStep struct {
	Func string  `json:"func"`
	Pos  jsonPos `json:"pos"`
	What string  `json:"what"`
}

// jsonDiag is the one-object-per-line shape CI and editors consume.
type jsonDiag struct {
	Analyzer string     `json:"analyzer"`
	Pos      jsonPos    `json:"pos"`
	Message  string     `json:"message"`
	Chain    []jsonStep `json:"chain,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false,
		"emit one JSON diagnostic object per line (analyzer, pos, message, chain)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bcelint [-json] [packages]\n\n")
		for _, rule := range analyzers.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", rule.Analyzer.Name, rule.Analyzer.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analyzers.RunSuite("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcelint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			jd := jsonDiag{
				Analyzer: d.Analyzer,
				Pos:      jsonPos{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column},
				Message:  d.Message,
			}
			for _, s := range d.Chain {
				jd.Chain = append(jd.Chain, jsonStep{
					Func: s.Func,
					Pos:  jsonPos{File: s.Pos.Filename, Line: s.Pos.Line, Col: s.Pos.Column},
					What: s.What,
				})
			}
			if err := enc.Encode(jd); err != nil {
				fmt.Fprintln(os.Stderr, "bcelint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			for _, s := range d.Chain {
				fmt.Printf("\t%s (%s): %s\n", s.Func, s.Pos, s.What)
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bcelint: %d determinism violation(s)\n", len(diags))
		os.Exit(1)
	}
}
