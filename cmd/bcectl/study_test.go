package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"bce/internal/client"
	"bce/internal/metrics"
	"bce/internal/population"
	"bce/internal/runner"
	"bce/internal/scenario"
)

// stubBatch fabricates deterministic per-cell metrics from the spec
// label, so checkpoint fixtures build in microseconds.
func stubBatch(ctx context.Context, specs []runner.Spec, opts ...runner.Option) ([]runner.RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]runner.RunResult, len(specs))
	for i, sp := range specs {
		h := uint64(14695981039346656037)
		for _, c := range []byte(sp.Label) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		var m metrics.Metrics
		m.IdleFraction = float64(h%1000) / 1000
		m.WastedFraction = float64((h>>10)%1000) / 1000
		m.ShareViolation = float64((h>>20)%1000) / 1000
		m.Monotony = float64((h>>30)%1000) / 1000
		m.RPCsPerJob = float64((h>>40)%1000) / 1000
		results[i] = runner.RunResult{Index: i, Label: sp.Label, Result: &client.Result{Metrics: m}}
	}
	return results, nil
}

// TestStudyResumeFlagValidation is the regression test for the resume
// footgun: `study -resume` used to silently adopt the checkpoint while
// the user's contradictory flags went ignored. Now explicit flags that
// disagree with the checkpoint are refused with a diff.
func TestStudyResumeFlagValidation(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	// A *completed* 6-scenario study: resuming it runs zero batches, so
	// the success cases below never touch the real emulation engine.
	p := population.Params{
		Combos:         []population.Combo{{Sched: "JS-LOCAL", Fetch: "JF-ORIG"}, {Sched: "JS-WRR", Fetch: "JF-HYSTERESIS"}},
		Scenarios:      6,
		Seed:           42,
		BatchSize:      3,
		CheckpointPath: ck,
		RunBatch:       stubBatch,
		Population:     scenario.PopulationParams{DurationDays: 1},
	}
	if _, err := population.Run(context.Background(), p); err != nil {
		t.Fatalf("building checkpoint fixture: %v", err)
	}

	cases := []struct {
		name    string
		args    []string
		wantErr []string // substrings; empty means success
	}{
		{
			name:    "conflicting seed",
			args:    []string{"-resume", ck, "-seed", "7"},
			wantErr: []string{"refusing to resume", "seed: checkpoint has 42, flags say 7"},
		},
		{
			name:    "shrunken n",
			args:    []string{"-resume", ck, "-n", "3"},
			wantErr: []string{"refusing to resume", "n: checkpoint has 6, flags say 3"},
		},
		{
			name:    "conflicting days",
			args:    []string{"-resume", ck, "-days", "2"},
			wantErr: []string{"refusing to resume", "days"},
		},
		{
			name:    "conflicting combos",
			args:    []string{"-resume", ck, "-combos", "JS-LOCAL/JF-ORIG"},
			wantErr: []string{"refusing to resume", "combos"},
		},
		{
			name: "bare resume adopts the checkpoint",
			args: []string{"-resume", ck},
		},
		{
			name: "matching explicit flags",
			args: []string{"-resume", ck, "-seed", "42", "-days", "1", "-n", "6"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runStudy(context.Background(), tc.args, false, 1, nil, nil)
			if len(tc.wantErr) == 0 {
				if err != nil {
					t.Fatalf("runStudy(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("runStudy(%v) succeeded, want refusal", tc.args)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

// TestStudyShardsNeedsCheckpoint pins the -shards precondition.
func TestStudyShardsNeedsCheckpoint(t *testing.T) {
	err := runStudy(context.Background(), []string{"-n", "10", "-shards", "2"}, false, 1, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("sharded study without -checkpoint: err = %v, want a -checkpoint complaint", err)
	}
}

// TestStudyShardsRejectsResume pins the -shards/-resume conflict.
func TestStudyShardsRejectsResume(t *testing.T) {
	err := runStudy(context.Background(), []string{"-shards", "2", "-checkpoint", "x", "-resume", "y"}, false, 1, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "per-shard resume") {
		t.Fatalf("sharded study with -resume: err = %v, want a conflict complaint", err)
	}
}
