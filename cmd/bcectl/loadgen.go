// The loadgen subcommand drives a running bceweb instance through the
// async submission API (internal/serve.Loadgen) and reports tail
// latency and throughput — closed-loop by default, open-loop with
// -rate. It is how the BENCH ledger's serve numbers are reproduced by
// hand against a real deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"bce/internal/scenario"
	"bce/internal/serve"
)

func runLoadgen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		url       = fs.String("url", "http://localhost:8080", "target bceweb base URL")
		n         = fs.Int("n", 50, "total submissions to complete")
		c         = fs.Int("c", 4, "closed-loop concurrency (virtual clients)")
		rate      = fs.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		days      = fs.Float64("days", 0.05, "emulated days per built-in scenario")
		scnPath   = fs.String("scenario", "", "scenario JSON file to submit (default: tiny built-in)")
		identical = fs.Bool("identical", false, "submit byte-identical requests (hammers the result cache)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "per-request cap, submit through completion")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: bcectl loadgen [flags]

Drives a running bceweb with submit→poll→result cycles and reports
p50/p90/p99 latency and throughput. Start a target first, e.g.:

  bceweb -addr localhost:8080 &
  bcectl loadgen -url http://localhost:8080 -n 100 -c 8

flags:`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := serve.LoadgenOptions{
		URL:         *url,
		Requests:    *n,
		Concurrency: *c,
		RatePerSec:  *rate,
		Identical:   *identical,
		Timeout:     *timeout,
	}
	if *scnPath != "" {
		f, err := os.Open(*scnPath)
		if err != nil {
			return err
		}
		scn, err := scenario.Load(f)
		f.Close() //bce:errok read-only handle
		if err != nil {
			return err
		}
		o.Scenario = scn
	} else {
		o.Scenario = serve.DefaultLoadgenScenario(*days)
	}
	mode := fmt.Sprintf("closed loop, %d clients", o.Concurrency)
	if o.RatePerSec > 0 {
		mode = fmt.Sprintf("open loop, %.1f req/s", o.RatePerSec)
	}
	fmt.Printf("loadgen: %d requests against %s (%s)\n", o.Requests, o.URL, mode)
	res, err := serve.Loadgen(ctx, o)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	if res.Failed > 0 {
		return fmt.Errorf("loadgen: %d request(s) failed", res.Failed)
	}
	return nil
}
