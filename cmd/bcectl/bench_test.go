package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bce/internal/perf"
)

// gateSuite is the cheapest declared hot-path benchmark; with
// -benchtime 1x the whole gate run costs microseconds, so the test
// exercises the real `bcectl bench gate` path end to end.
const gateSuite = "fetch_decide"

// writeBaseline records a BENCH file for gateSuite with the given
// allocs/op and returns its path. Wall time is gated off (Time: -1 in
// the tests below), so only the alloc axis decides.
func writeBaseline(t *testing.T, dir string, allocs int64) string {
	t.Helper()
	l := &perf.Ledger{
		Schema: perf.Schema,
		Stamp:  "20260101T000000",
		Suite:  gateSuite,
		Entries: []perf.Entry{
			{Name: gateSuite, Iters: 1, NsPerOp: 1, AllocsPerOp: allocs},
		},
	}
	path, err := perf.Save(dir, l)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchGateSyntheticRegression injects a synthetic regression — a
// baseline ledger claiming the benchmark allocates nothing — and
// asserts `bcectl bench gate` fails against it, naming the benchmark.
func TestBenchGateSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir, 0) // real run allocates > 0: guaranteed regression
	th := perf.Thresholds{Time: -1, Allocs: 0.10}
	err := benchGate(gateSuite, "1x", "", baseline, th)
	if err == nil {
		t.Fatal("gate must fail on an injected allocation regression")
	}
	if !strings.Contains(err.Error(), gateSuite) || !strings.Contains(err.Error(), "allocs") {
		t.Fatalf("gate error should name the benchmark and the regressed axis: %v", err)
	}
}

// TestBenchGatePassesAgainstHonestBaseline records a fresh baseline
// with `bench run` and gates a second run against it: with wall time
// ungated and allocation counts deterministic, the gate must pass.
func TestBenchGatePassesAgainstHonestBaseline(t *testing.T) {
	dir := t.TempDir()
	if _, err := benchRunSuite(gateSuite, "1x", dir); err != nil {
		t.Fatal(err)
	}
	th := perf.Thresholds{Time: -1, Allocs: 0.10}
	if err := benchGate(gateSuite, "1x", "", dir, th); err != nil {
		t.Fatalf("gate vs a just-recorded baseline must pass: %v", err)
	}
}

// TestBenchGateRejectsCorruptBaseline makes sure a damaged ledger is a
// loud error, not a silently-passing gate.
func TestBenchGateRejectsCorruptBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_20260101T000000.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := benchGate(gateSuite, "1x", "", path, perf.Thresholds{Time: -1, Allocs: 0.10})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("want corrupt-baseline error, got %v", err)
	}
}

// TestBenchRunWritesLedger checks `bench run -out` produces a ledger
// that round-trips through the loader with the suite's entries.
func TestBenchRunWritesLedger(t *testing.T) {
	dir := t.TempDir()
	if _, err := benchRunSuite(gateSuite, "1x", dir); err != nil {
		t.Fatal(err)
	}
	l, _, err := perf.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Suite != gateSuite || l.Entry(gateSuite) == nil {
		t.Fatalf("recorded ledger missing %s entry: %+v", gateSuite, l)
	}
	// The file is real JSON with the schema marker, not just loadable.
	paths, err := perf.List(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("want exactly one ledger file, got %v (%v)", paths, err)
	}
	var raw map[string]any
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["schema"] != float64(perf.Schema) {
		t.Fatalf("schema field: got %v", raw["schema"])
	}
}
