// The bench subcommand drives internal/perf — the emulator's
// performance ledger. `bench run` executes a declared benchmark suite
// and records a BENCH_<stamp>.json trajectory file; `bench compare`
// diffs two recorded ledgers; `bench gate` runs the suite fresh and
// fails (exit 1) if any benchmark regressed past the noise thresholds
// versus the baseline ledger. CI and humans drive the ledger through
// these verbs instead of ad-hoc `go test -bench` invocations.
package main

import (
	"flag"
	"fmt"
	"os"

	"bce/internal/perf"
)

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		suite     = fs.String("suite", "hot", `benchmarks to run: "hot", "figures", "serve", "study", "all", or comma-separated names`)
		out       = fs.String("out", "", "directory to write the fresh BENCH_<stamp>.json ledger into (empty: don't save)")
		baseline  = fs.String("baseline", "", "baseline for compare/gate: a ledger file, or a directory holding BENCH_*.json (default \".\", newest wins)")
		benchtime = fs.String("benchtime", "", `per-benchmark budget like go test -benchtime ("2s", "100x"; empty: testing's 1s default)`)
		threshold = fs.Float64("threshold", perf.DefaultThresholds.Time, "wall-time regression threshold as a fraction; negative disables time gating")
		allocTh   = fs.Float64("alloc-threshold", perf.DefaultThresholds.Allocs, "allocs/op regression threshold as a fraction; negative disables alloc gating")
		list      = fs.Bool("list", false, "list the declared benchmarks and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: bcectl bench [bench flags] run|compare|gate [ledger files]

  bench run                    run the suite; save a ledger if -out is set
  bench compare old new        diff two recorded ledger files
  bench compare                diff the two newest ledgers in the -baseline dir
  bench gate                   run the suite fresh and fail on regression
                               vs the -baseline ledger (file or dir)

bench flags:`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, bn := range perf.AllSuite() {
			fmt.Printf("%-16s %s\n", bn.Name, bn.Doc)
		}
		return nil
	}
	th := perf.Thresholds{Time: *threshold, Allocs: *allocTh}
	verb := fs.Arg(0)
	switch verb {
	case "", "run":
		return benchRun(*suite, *benchtime, *out)
	case "compare":
		return benchCompare(fs.Args()[1:], *baseline, th)
	case "gate":
		return benchGate(*suite, *benchtime, *out, *baseline, th)
	default:
		fs.Usage()
		return fmt.Errorf("unknown bench verb %q", verb)
	}
}

// benchRunSuite runs the selected suite into a fresh ledger, saving it
// when outDir is non-empty.
func benchRunSuite(suiteSpec, benchtime, outDir string) (*perf.Ledger, error) {
	benches, err := perf.Select(suiteSpec)
	if err != nil {
		return nil, err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	entries, err := perf.RunSuite(benches, benchtime, logf)
	if err != nil {
		return nil, err
	}
	l := perf.NewLedger(suiteSpec, benchtime)
	l.Entries = entries
	if outDir != "" {
		path, err := perf.Save(outDir, l)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ledger written to %s\n", path)
	}
	return l, nil
}

func benchRun(suiteSpec, benchtime, outDir string) error {
	l, err := benchRunSuite(suiteSpec, benchtime, outDir)
	if err != nil {
		return err
	}
	fmt.Printf("suite %s at %s (commit %s, %s %s/%s)\n", l.Suite, l.Stamp, orDash(l.Commit), l.Host.GoVersion, l.Host.OS, l.Host.Arch)
	for _, e := range l.Entries {
		fmt.Printf("%-16s %12.0f ns/op %8d allocs/op %10d B/op\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	return nil
}

// loadBaseline resolves -baseline: a ledger file loads directly, a
// directory (or "") yields its newest BENCH_*.json.
func loadBaseline(spec string) (*perf.Ledger, string, error) {
	if spec == "" {
		spec = "."
	}
	st, err := os.Stat(spec)
	if err != nil {
		return nil, "", fmt.Errorf("baseline %s: %w", spec, err)
	}
	if st.IsDir() {
		return perf.Latest(spec)
	}
	l, err := perf.Load(spec)
	if err != nil {
		return nil, "", err
	}
	return l, spec, nil
}

func benchCompare(files []string, baseline string, th perf.Thresholds) error {
	var base, cur *perf.Ledger
	switch len(files) {
	case 2:
		var err error
		if base, err = perf.Load(files[0]); err != nil {
			return err
		}
		if cur, err = perf.Load(files[1]); err != nil {
			return err
		}
	case 0:
		dir := baseline
		if dir == "" {
			dir = "."
		}
		paths, err := perf.List(dir)
		if err != nil {
			return err
		}
		if len(paths) < 2 {
			return fmt.Errorf("compare needs two ledgers; %s has %d (pass two files explicitly)", dir, len(paths))
		}
		if base, err = perf.Load(paths[len(paths)-2]); err != nil {
			return err
		}
		if cur, err = perf.Load(paths[len(paths)-1]); err != nil {
			return err
		}
	default:
		return fmt.Errorf("compare takes zero or two ledger files, got %d", len(files))
	}
	rep := perf.Compare(base, cur, th)
	fmt.Print(rep.Table())
	return nil
}

func benchGate(suiteSpec, benchtime, outDir, baseline string, th perf.Thresholds) error {
	base, basePath, err := loadBaseline(baseline)
	if err != nil {
		return err
	}
	cur, err := benchRunSuite(suiteSpec, benchtime, outDir)
	if err != nil {
		return err
	}
	rep := perf.Compare(base, cur, th)
	fmt.Printf("gate vs %s\n", basePath)
	fmt.Print(rep.Table())
	return rep.Gate()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
