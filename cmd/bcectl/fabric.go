// The distributed-study subcommands. `study -shards N` is the
// one-machine convenience: an in-process coordinator plus N spawned
// `study-worker` children. `study-coord` and `study-worker` are the
// same pieces as separate processes for anything longer-lived — kill
// and restart any of them; the shard checkpoints and the coordinator
// dir make the study converge to the same bits regardless.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"time"

	"bce/internal/fabric"
	"bce/internal/population"
	"bce/internal/report"
	"bce/internal/runner"
)

// specFromParams lifts the single-process study parameters into a
// sharded-study spec.
func specFromParams(p population.Params, shards int) fabric.Spec {
	return fabric.Spec{
		Seed:            p.Seed,
		Combos:          p.Combos,
		Population:      p.Population,
		Scenarios:       p.Scenarios,
		Shards:          shards,
		BatchSize:       p.BatchSize,
		CheckpointEvery: p.CheckpointEvery,
	}
}

// stderrLog returns a coordinator/worker log sink on stderr, or a
// no-op when quiet.
func stderrLog(verbose bool) func(string, ...any) {
	if !verbose {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// runShardedStudy is `study -shards N`: coordinator in-process on a
// loopback port, N child worker processes, merged tables at the end.
// Interrupt it and rerun the same command to resume — shard state
// lives next to the checkpoint in <checkpoint>.shards/.
func runShardedStudy(ctx context.Context, p population.Params, shards int, checkpoint string, progress bool, workers int, rep *report.Report) error {
	if checkpoint == "" {
		return fmt.Errorf("study -shards needs -checkpoint: it anchors the merged result and the per-shard state dir")
	}
	dir := checkpoint + ".shards"
	spec := specFromParams(p, shards)
	coord, err := fabric.NewCoordinator(spec, fabric.CoordinatorOptions{
		Dir: dir,
		Log: stderrLog(progress),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns non-nil on Close
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	// Split the batch worker budget across the child processes; each
	// child still parallelizes within its shard.
	per := workers / shards
	if per < 1 {
		per = 1
	}
	procs := make([]*exec.Cmd, 0, shards)
	for i := 0; i < shards; i++ {
		args := []string{
			"-workers", strconv.Itoa(per),
			"-progress=" + strconv.FormatBool(progress),
			"study-worker",
			"-coord", url,
			"-name", fmt.Sprintf("shard-worker-%d", i),
			"-dir", dir,
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Stderr = os.Stderr
		cmd.Stdout = os.Stderr
		// On interrupt, SIGTERM the children so they checkpoint between
		// batches; escalate to SIGKILL only if they dawdle.
		cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
		cmd.WaitDelay = 10 * time.Second
		if err := cmd.Start(); err != nil {
			for _, sib := range procs {
				_ = sib.Process.Signal(syscall.SIGTERM) //bce:errok best-effort cleanup of already-started siblings
			}
			return fmt.Errorf("starting worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}

	var workerErr error
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil && workerErr == nil && ctx.Err() == nil {
			workerErr = fmt.Errorf("worker %d: %w", i, err)
		}
	}

	select {
	case <-coord.Done():
	default:
		if err := ctx.Err(); err != nil {
			s := coord.Status()
			fmt.Fprintf(os.Stderr, "sharded study interrupted at %d/%d scenarios; rerun the same command to resume\n",
				s.ScenariosDone, s.Scenarios)
			return err
		}
		if workerErr != nil {
			return workerErr
		}
		return fmt.Errorf("workers exited but the study is incomplete (see %s)", dir)
	}

	st, err := coord.Result()
	if err != nil {
		return err
	}
	if err := population.SaveCheckpoint(checkpoint, st); err != nil {
		return fmt.Errorf("writing merged checkpoint: %w", err)
	}
	printStudy(st, rep)
	return nil
}

// runStudyCoord is `study-coord`: the coordinator as its own process,
// serving workers on -addr until every shard reports.
func runStudyCoord(ctx context.Context, args []string, progress bool, rep *report.Report) error {
	fs := flag.NewFlagSet("study-coord", flag.ContinueOnError)
	pf := addPopFlags(fs)
	var (
		shards     = fs.Int("shards", 2, "number of contiguous scenario shards to lease out")
		addr       = fs.String("addr", "127.0.0.1:9931", "listen address for workers")
		dir        = fs.String("dir", "", "state dir for the spec and reported shards (required)")
		checkpoint = fs.String("checkpoint", "", "also write the merged study to this checkpoint file")
		leaseSecs  = fs.Float64("lease-secs", fabric.DefaultLeaseTTL.Seconds(), "lease TTL before a silent worker's shard is re-granted")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bcectl study-coord -dir DIR [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("study-coord needs -dir: it holds the spec and survives restarts")
	}
	p, err := pf.params()
	if err != nil {
		return err
	}
	coord, err := fabric.NewCoordinator(specFromParams(p, *shards), fabric.CoordinatorOptions{
		Dir:      *dir,
		LeaseTTL: time.Duration(*leaseSecs * float64(time.Second)),
		Log:      stderrLog(true),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "study-coord: serving %d scenarios in %d shards on http://%s\n",
		p.Scenarios, *shards, ln.Addr())

	select {
	case <-coord.Done():
	case err := <-errCh:
		return err
	case <-ctx.Done():
		s := coord.Status()
		fmt.Fprintf(os.Stderr, "study-coord interrupted: %d/%d shards reported; restart with the same -dir to continue\n",
			s.Done, s.Shards)
		srv.Close()
		return ctx.Err()
	}
	srv.Close()

	st, err := coord.Result()
	if err != nil {
		return err
	}
	if *checkpoint != "" {
		if err := population.SaveCheckpoint(*checkpoint, st); err != nil {
			return fmt.Errorf("writing merged checkpoint: %w", err)
		}
	}
	printStudy(st, rep)
	return nil
}

// runStudyWorker is `study-worker`: lease shards from a coordinator
// and fold them until the study is done.
func runStudyWorker(ctx context.Context, args []string, progress bool, opts []runner.Option) error {
	fs := flag.NewFlagSet("study-worker", flag.ContinueOnError)
	var (
		coordURL = fs.String("coord", "", "coordinator base URL, e.g. http://127.0.0.1:9931 (required)")
		name     = fs.String("name", fmt.Sprintf("worker-%d", os.Getpid()), "worker name; reuse it on restart to reclaim the same shard")
		dir      = fs.String("dir", "", "local dir for shard checkpoints (required; reuse it on restart to resume mid-shard)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bcectl [flags] study-worker -coord URL -dir DIR [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" || *dir == "" {
		return fmt.Errorf("study-worker needs -coord and -dir")
	}
	w := &fabric.Worker{
		Coord: *coordURL,
		Name:  *name,
		Dir:   *dir,
		Log:   stderrLog(progress),
	}
	if progress {
		w.Progress = func(shard, done, total int) {
			fmt.Fprintf(os.Stderr, "%s: shard %d: %d/%d scenarios\n", *name, shard, done, total)
		}
	}
	err := w.Run(ctx, opts...)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "%s: interrupted; restart with the same -name and -dir to resume\n", *name)
	}
	return err
}
