// Command bcectl is the emulator's controller (paper §4.3): it does
// multiple BCE runs and summarises the figures of merit. Subcommands:
//
//	bcectl fig1|fig2|fig3|fig4|fig5|fig6   regenerate a paper figure
//	bcectl figures                         regenerate all figures
//	bcectl compare scenario.json           all policy combinations on one scenario
//	bcectl sweep   scenario.json           sweep a scenario parameter
//	bcectl study -n 1000                   streaming Monte-Carlo population study
//	bcectl study -shards 4 ...             the same study across local worker processes
//	bcectl study-coord / study-worker      distributed study across machines/processes
//	bcectl bench run|compare|gate          performance ledger (internal/perf)
//	bcectl loadgen -url http://host:8080   load-test a running bceweb
//
// Figure output is a table plus an ASCII chart; -csv writes the series
// as CSV to a file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"bce"
	"bce/internal/experiments"
	"bce/internal/harness"
	"bce/internal/report"
	"bce/internal/runner"
	"bce/internal/scenario"
)

func main() {
	var (
		seeds      = flag.Int("seeds", 3, "replications per configuration")
		workers    = flag.Int("workers", runtime.NumCPU(), "concurrent emulation runs")
		progress   = flag.Bool("progress", false, "print live batch progress to stderr")
		csv        = flag.String("csv", "", "also write figure/sweep data as CSV to this file")
		chart      = flag.Bool("chart", true, "print ASCII charts for sweeps")
		html       = flag.String("html", "", "also write an HTML report with SVG charts to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole batch to this file")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	// os.Exit skips deferred calls and a truncated profile is useless,
	// so every exit path below stops the profile explicitly.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcectl:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bcectl:", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	sl := harness.Seeds(*seeds)
	var rep *report.Report
	if *html != "" {
		rep = report.New("BCE " + cmd + " report")
	}

	// Ctrl-C cancels the batch between simulator events; a second
	// signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	batchOpts := runner.Options{Workers: *workers}
	if *progress {
		batchOpts.Progress = printProgress
	}
	opts := []runner.Option{runner.WithOptions(batchOpts)}

	var err error
	switch cmd {
	case "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"ext-transfer", "ext-fleet", "ext-server":
		err = runFigure(ctx, cmd, sl, *csv, *chart, rep, opts)
	case "figures":
		for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
			if err = runFigure(ctx, id, sl, "", *chart, rep, opts); err != nil {
				break
			}
			fmt.Println()
		}
	case "extensions":
		for _, e := range experiments.Extensions() {
			if err = runFigure(ctx, e.ID, sl, "", *chart, rep, opts); err != nil {
				break
			}
			fmt.Println()
		}
	case "compare":
		err = runCompare(ctx, flag.Arg(1), sl, rep, opts)
	case "sweep":
		err = runSweep(ctx, flag.Args()[1:], sl, *csv, *chart, rep, opts)
	case "study":
		err = runStudy(ctx, flag.Args()[1:], *progress, *workers, rep, opts)
	case "study-coord":
		err = runStudyCoord(ctx, flag.Args()[1:], *progress, rep)
	case "study-worker":
		err = runStudyWorker(ctx, flag.Args()[1:], *progress, opts)
	case "bench":
		err = runBench(flag.Args()[1:])
	case "loadgen":
		err = runLoadgen(ctx, flag.Args()[1:])
	default:
		usage()
		stopProfile()
		os.Exit(2)
	}
	if err == nil && rep != nil {
		err = writeReport(rep, *html)
	}
	stopProfile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcectl:", err)
		os.Exit(1)
	}
}

// printProgress rewrites one stderr status line per engine update.
func printProgress(p runner.Progress) {
	fmt.Fprintf(os.Stderr, "\r%d/%d runs (%d in flight, %d failed)  %.2e events  %.3g ev/s   ",
		p.Done, p.Total, p.Started-p.Done, p.Failed, float64(p.Events), p.EventsPerSec())
	if p.Done == p.Total {
		fmt.Fprintln(os.Stderr)
	}
}

func writeReport(rep *report.Report, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := rep.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "HTML report written to %s\n", path)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `bcectl — BOINC client emulator controller

  bcectl [flags] fig1..fig6        regenerate one paper figure
  bcectl [flags] figures           regenerate all paper figures
  bcectl [flags] extensions        run the extension experiments
                                   (ext-transfer, ext-fleet, ext-server)
  bcectl [flags] compare s.json    run every policy combination on a scenario
  bcectl [flags] sweep s.json param v1 v2 ...
                                   sweep a scenario parameter
                                   (param: min_queue_hours, max_queue_hours,
                                    rec_half_life, duration_days)
  bcectl [flags] study [study flags]
                                   streaming population study with
                                   checkpoint/resume (study -h for flags);
                                   -shards N fans it out across N local
                                   worker processes
  bcectl study-coord -dir DIR      coordinator for a distributed study:
                                   leases scenario shards to workers,
                                   merges their aggregates
  bcectl [flags] study-worker -coord URL -dir DIR
                                   worker for a distributed study; kill
                                   and restart with the same -name/-dir
                                   to resume mid-shard
  bcectl bench [bench flags] run|compare|gate
                                   run the perf suite into a BENCH_*.json
                                   ledger, diff ledgers, or gate against
                                   the baseline (bench -h for flags)
  bcectl loadgen [loadgen flags]   drive a running bceweb with submit→poll
                                   cycles; report p50/p99 latency and
                                   throughput (loadgen -h for flags)

flags:
`)
	flag.PrintDefaults()
}

func runFigure(ctx context.Context, id string, seeds []int64, csvPath string, chart bool, rep *report.Report, opts []runner.Option) error {
	var fig *experiments.Figure
	var err error
	switch id {
	case "fig1":
		fig, err = experiments.Figure1Context(ctx, seeds, opts...)
	case "fig2":
		fig = experiments.Figure2()
	case "fig3":
		fig, err = experiments.Figure3Context(ctx, seeds, opts...)
	case "fig4":
		fig, err = experiments.Figure4Context(ctx, seeds, opts...)
	case "fig5":
		fig, err = experiments.Figure5Context(ctx, seeds, opts...)
	case "fig6":
		fig, err = experiments.Figure6Context(ctx, seeds, opts...)
	default:
		var ext experiments.Extension
		if ext, err = experiments.ExtensionByID(id); err == nil {
			fig, err = ext.Gen(ctx, seeds, opts...)
		}
	}
	if err != nil {
		return err
	}
	printFigure(fig, chart)
	if rep != nil {
		rep.AddFigure(fig)
	}
	if csvPath != "" {
		return writeFigureCSV(fig, csvPath)
	}
	return nil
}

func printFigure(f *experiments.Figure, chart bool) {
	fmt.Printf("== %s: %s\n", f.ID, f.Title)
	fmt.Println(f.Header())
	for i := range f.X {
		fmt.Println(f.Row(i))
	}
	if f.Notes != "" {
		fmt.Println("note:", f.Notes)
	}
	if chart && len(f.X) > 2 {
		fmt.Println()
		fmt.Print(figureChart(f, 60, 12))
	}
}

// figureChart renders the figure's series as a crude ASCII chart.
func figureChart(f *experiments.Figure, width, height int) string {
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	minX, maxX := f.X[0], f.X[len(f.X)-1]
	var maxY float64
	for _, l := range f.Labels {
		for _, y := range f.Y[l] {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for li, l := range f.Labels {
		g := glyphs[li%len(glyphs)]
		for i, x := range f.X {
			col := 0
			if maxX > minX {
				col = int(float64(width-1) * (x - minX) / (maxX - minX))
			}
			row := height - 1 - int(float64(height-1)*f.Y[l][i]/maxY)
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s (ymax=%.3f)\n", f.YLabel, f.XLabel, maxY)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n ")
	for li, l := range f.Labels {
		fmt.Fprintf(&b, " %c=%s", glyphs[li%len(glyphs)], l)
	}
	b.WriteByte('\n')
	return b.String()
}

func writeFigureCSV(f *experiments.Figure, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	fmt.Fprintf(out, "%s", f.XLabel)
	for _, l := range f.Labels {
		fmt.Fprintf(out, ",%s", l)
	}
	fmt.Fprintln(out)
	for i, x := range f.X {
		fmt.Fprintf(out, "%g", x)
		for _, l := range f.Labels {
			fmt.Fprintf(out, ",%g", f.Y[l][i])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runCompare runs every job-sched × job-fetch combination on a
// user-supplied scenario.
func runCompare(ctx context.Context, path string, seeds []int64, rep *report.Report, opts []runner.Option) error {
	if path == "" {
		return fmt.Errorf("compare needs a scenario file")
	}
	base, err := bce.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	var variants []harness.Variant
	for _, js := range []string{"JS-LOCAL", "JS-GLOBAL", "JS-WRR"} {
		for _, jf := range []string{"JF-ORIG", "JF-HYSTERESIS"} {
			js, jf := js, jf
			variants = append(variants, harness.Variant{
				Label: js + "/" + jf,
				Make: func(seed int64) bce.Config {
					s := *base
					s.Policies.JobSched = js
					s.Policies.JobFetch = jf
					s.Seed = seed
					cfg, err := s.Config()
					if err != nil {
						panic(err) // validated at load
					}
					return cfg
				},
			})
		}
	}
	cmp, err := harness.CompareContext(ctx, variants, seeds, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s, %d seed(s)\n\n", base.Name, len(seeds))
	fmt.Print(cmp.Table())
	if rep != nil {
		rep.AddComparison("Policy comparison on "+base.Name, cmp)
	}
	return nil
}

// runSweep sweeps one scenario parameter across the given values.
func runSweep(ctx context.Context, args []string, seeds []int64, csvPath string, chart bool, rep *report.Report, opts []runner.Option) error {
	if len(args) < 3 {
		return fmt.Errorf("sweep needs: scenario.json param v1 v2 ...")
	}
	base, err := bce.LoadScenarioFile(args[0])
	if err != nil {
		return err
	}
	param := args[1]
	var xs []float64
	for _, a := range args[2:] {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return fmt.Errorf("bad sweep value %q: %w", a, err)
		}
		xs = append(xs, v)
	}
	set := func(s *scenario.Scenario, v float64) error {
		switch param {
		case "min_queue_hours":
			s.Host.MinQueueHours = v
		case "max_queue_hours":
			s.Host.MaxQueueHours = v
		case "rec_half_life":
			s.Policies.RECHalfLife = v
		case "duration_days":
			s.DurationDays = v
		default:
			return fmt.Errorf("unknown sweep parameter %q", param)
		}
		return nil
	}
	mk := func(x float64) []harness.Variant {
		return []harness.Variant{{
			Label: base.Name,
			Make: func(seed int64) bce.Config {
				s := *base
				if err := set(&s, x); err != nil {
					panic(err)
				}
				s.Seed = seed
				cfg, err := s.Config()
				if err != nil {
					panic(err)
				}
				return cfg
			},
		}}
	}
	// Validate the parameter name once up front.
	probe := *base
	if err := set(&probe, xs[0]); err != nil {
		return err
	}
	sw, err := harness.SweepContext(ctx, param, xs, mk, seeds, opts...)
	if err != nil {
		return err
	}
	for _, metric := range []string{"idle", "wasted", "share_violation", "monotony", "rpcs_per_job"} {
		fmt.Print(sw.Table(metric))
		fmt.Println()
	}
	if chart {
		fmt.Print(sw.Chart("wasted", 60, 12))
	}
	if rep != nil {
		for _, metric := range []string{"idle", "wasted", "share_violation", "monotony", "rpcs_per_job"} {
			rep.AddSweep(metric+" vs "+param, sw, metric)
		}
	}
	if csvPath != "" {
		out, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer out.Close()
		return sw.CSV(out)
	}
	return nil
}
