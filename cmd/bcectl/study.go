// The study subcommand: a streaming Monte-Carlo population study
// (paper §6.2) with checkpoint/resume, optionally fanned out across
// local worker processes (-shards N) through the fabric coordinator.
// Unlike compare/sweep, which keep every run's metrics, study folds
// each (scenario, policy) cell into constant-size aggregates, so -n
// can be large.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"bce/internal/population"
	"bce/internal/report"
	"bce/internal/runner"
	"bce/internal/scenario"
)

// popFlags is the population-defining flag set shared by study,
// study-coord and the sharded fan-out: everything that changes *what*
// is computed (as opposed to where and how fast).
type popFlags struct {
	n          *int
	seed       *int64
	days       *float64
	batch      *int
	every      *int
	combosFlag *string
	maxProj    *int
	gpuFrac    *float64
	sporFrac   *float64
}

func addPopFlags(fs *flag.FlagSet) *popFlags {
	return &popFlags{
		n:          fs.Int("n", 100, "number of scenarios to sample"),
		seed:       fs.Int64("seed", 1, "base seed for the scenario population"),
		days:       fs.Float64("days", 1, "emulated duration of each scenario, days"),
		batch:      fs.Int("batch", 0, "scenarios per engine batch (0 = default)"),
		every:      fs.Int("every", 1, "checkpoint every N batches"),
		combosFlag: fs.String("combos", "", "comma-separated sched/fetch pairs (default: the paper's matrix)"),
		maxProj:    fs.Int("max-projects", 0, "cap on projects per scenario (0 = default)"),
		gpuFrac:    fs.Float64("gpu-frac", -1, "fraction of hosts with a GPU (-1 = default)"),
		sporFrac:   fs.Float64("sporadic-frac", -1, "fraction of hosts with sporadic availability (-1 = default)"),
	}
}

// params materializes the flag values (checkpoint wiring is the
// caller's business).
func (pf *popFlags) params() (population.Params, error) {
	p := population.Params{
		Scenarios: *pf.n,
		Seed:      *pf.seed,
		Population: scenario.PopulationParams{
			DurationDays: *pf.days,
			MaxProjects:  *pf.maxProj,
		},
		BatchSize:       *pf.batch,
		CheckpointEvery: *pf.every,
	}
	if *pf.gpuFrac >= 0 {
		p.Population.GPUFraction = scenario.Frac(*pf.gpuFrac)
	}
	if *pf.sporFrac >= 0 {
		p.Population.SporadicFrac = scenario.Frac(*pf.sporFrac)
	}
	if *pf.combosFlag != "" {
		combos, err := parseCombos(*pf.combosFlag)
		if err != nil {
			return population.Params{}, err
		}
		p.Combos = combos
	}
	return p, nil
}

// explicitFlags records which flags the user actually typed, so a
// resume can tell "flag left at its default, adopt the checkpoint"
// apart from "flag set to something the checkpoint contradicts".
func explicitFlags(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// checkResumeFlags refuses a resume whose explicit flags disagree with
// the checkpoint (seed, combos, population shape, or a shrunken -n):
// folding new scenarios under changed parameters would silently mix
// incompatible aggregates. Flags left at their defaults adopt the
// checkpoint's values, as Resume always has.
func checkResumeFlags(path string, p population.Params, explicit map[string]bool) error {
	ck, err := population.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	// Map between diff fields and the flags that control them; fields
	// whose flag was not typed are not disagreements.
	flagFor := map[string]string{
		"seed": "seed", "combos": "combos", "days": "days",
		"max-projects": "max-projects", "gpu-frac": "gpu-frac", "sporadic-frac": "sporadic-frac",
	}
	var kept []population.ParamDiff
	for _, d := range population.DiffParams(ck, p) {
		if name, ok := flagFor[d.Field]; ok && explicit[name] {
			kept = append(kept, d)
		}
	}
	if explicit["n"] && p.Scenarios < ck.Target {
		kept = append(kept, population.ParamDiff{
			Field: "n", Checkpoint: fmt.Sprint(ck.Target), Want: fmt.Sprint(p.Scenarios),
		})
	}
	if len(kept) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "refusing to resume %s: flags disagree with the checkpoint:\n", path)
	for _, d := range kept {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	b.WriteString("drop the conflicting flags to continue the checkpointed study, or start fresh without -resume")
	return fmt.Errorf("%s", b.String())
}

func runStudy(ctx context.Context, args []string, progress bool, workers int, rep *report.Report, opts []runner.Option) error {
	fs := flag.NewFlagSet("study", flag.ContinueOnError)
	pf := addPopFlags(fs)
	var (
		checkpoint = fs.String("checkpoint", "", "write an aggregate checkpoint to this file")
		resume     = fs.String("resume", "", "resume from this checkpoint file (overrides population flags)")
		shards     = fs.Int("shards", 0, "fan the study out across N local worker processes (needs -checkpoint)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bcectl [flags] study [study flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := explicitFlags(fs)

	p, err := pf.params()
	if err != nil {
		return err
	}
	p.CheckpointPath = *checkpoint

	if *shards > 1 {
		if *resume != "" {
			return fmt.Errorf("study -shards manages its own per-shard resume; rerun the same -shards command instead of -resume")
		}
		return runShardedStudy(ctx, p, *shards, *checkpoint, progress, workers, rep)
	}

	if progress {
		p.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rstudy: %d/%d scenarios   ", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var st *population.Study
	if *resume != "" {
		if err := checkResumeFlags(*resume, p, explicit); err != nil {
			return err
		}
		if !explicit["n"] {
			// Keep the checkpoint's own target: a bare -resume finishes
			// the interrupted study; only an explicit -n extends it.
			p.Scenarios = 0
		}
		st, err = population.Resume(ctx, *resume, p, opts...)
	} else {
		st, err = population.Run(ctx, p, opts...)
	}
	if err != nil {
		if st != nil && st.Done > 0 && (*checkpoint != "" || *resume != "") {
			ck := *checkpoint
			if ck == "" {
				ck = *resume
			}
			fmt.Fprintf(os.Stderr, "study interrupted at %d/%d scenarios; resume with: bcectl study -resume %s\n",
				st.Done, st.Target, ck)
		}
		return err
	}
	printStudy(st, rep)
	return nil
}

// printStudy renders the finished study's tables (shared by the
// single-process and sharded paths).
func printStudy(st *population.Study, rep *report.Report) {
	fmt.Printf("population study: %d scenarios, seed %d\n\n", st.Done, st.Seed)
	fmt.Print(st.Table())
	fmt.Println()
	fmt.Print(st.QuantileTable(2)) // share_violation
	fmt.Println()
	fmt.Print(st.WinsTable(2))
	fmt.Println()
	fmt.Print(st.WinsTable(4)) // rpcs_per_job
	if rep != nil {
		rep.AddPopulation(fmt.Sprintf("Population study (%d scenarios)", st.Done), st)
	}
}

// parseCombos parses "JS-LOCAL/JF-ORIG,JS-WRR/JF-HYSTERESIS".
func parseCombos(s string) ([]population.Combo, error) {
	var combos []population.Combo
	for _, part := range strings.Split(s, ",") {
		sched, fetch, ok := strings.Cut(strings.TrimSpace(part), "/")
		if !ok || sched == "" || fetch == "" {
			return nil, fmt.Errorf("bad combo %q: want SCHED/FETCH", part)
		}
		combos = append(combos, population.Combo{Sched: sched, Fetch: fetch})
	}
	return combos, nil
}
