// The study subcommand: a streaming Monte-Carlo population study
// (paper §6.2) with checkpoint/resume. Unlike compare/sweep, which
// keep every run's metrics, study folds each (scenario, policy) cell
// into constant-size aggregates, so -n can be large.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"bce/internal/population"
	"bce/internal/report"
	"bce/internal/runner"
	"bce/internal/scenario"
)

func runStudy(ctx context.Context, args []string, progress bool, rep *report.Report, opts []runner.Option) error {
	fs := flag.NewFlagSet("study", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 100, "number of scenarios to sample")
		seed       = fs.Int64("seed", 1, "base seed for the scenario population")
		days       = fs.Float64("days", 1, "emulated duration of each scenario, days")
		batch      = fs.Int("batch", 0, "scenarios per engine batch (0 = default)")
		checkpoint = fs.String("checkpoint", "", "write an aggregate checkpoint to this file")
		every      = fs.Int("every", 1, "checkpoint every N batches")
		resume     = fs.String("resume", "", "resume from this checkpoint file (overrides population flags)")
		combosFlag = fs.String("combos", "", "comma-separated sched/fetch pairs (default: the paper's matrix)")
		maxProj    = fs.Int("max-projects", 0, "cap on projects per scenario (0 = default)")
		gpuFrac    = fs.Float64("gpu-frac", -1, "fraction of hosts with a GPU (-1 = default)")
		sporFrac   = fs.Float64("sporadic-frac", -1, "fraction of hosts with sporadic availability (-1 = default)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bcectl [flags] study [study flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	nSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			nSet = true
		}
	})

	p := population.Params{
		Scenarios: *n,
		Seed:      *seed,
		Population: scenario.PopulationParams{
			DurationDays: *days,
			MaxProjects:  *maxProj,
		},
		BatchSize:       *batch,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *every,
	}
	if *gpuFrac >= 0 {
		p.Population.GPUFraction = scenario.Frac(*gpuFrac)
	}
	if *sporFrac >= 0 {
		p.Population.SporadicFrac = scenario.Frac(*sporFrac)
	}
	if *combosFlag != "" {
		combos, err := parseCombos(*combosFlag)
		if err != nil {
			return err
		}
		p.Combos = combos
	}
	if progress {
		p.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rstudy: %d/%d scenarios   ", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var st *population.Study
	var err error
	if *resume != "" {
		if !nSet {
			// Keep the checkpoint's own target: a bare -resume finishes
			// the interrupted study; only an explicit -n extends it.
			p.Scenarios = 0
		}
		st, err = population.Resume(ctx, *resume, p, opts...)
	} else {
		st, err = population.Run(ctx, p, opts...)
	}
	if err != nil {
		if st != nil && st.Done > 0 && (*checkpoint != "" || *resume != "") {
			ck := *checkpoint
			if ck == "" {
				ck = *resume
			}
			fmt.Fprintf(os.Stderr, "study interrupted at %d/%d scenarios; resume with: bcectl study -resume %s\n",
				st.Done, st.Target, ck)
		}
		return err
	}

	fmt.Printf("population study: %d scenarios, seed %d\n\n", st.Done, st.Seed)
	fmt.Print(st.Table())
	fmt.Println()
	fmt.Print(st.QuantileTable(2)) // share_violation
	fmt.Println()
	fmt.Print(st.WinsTable(2))
	fmt.Println()
	fmt.Print(st.WinsTable(4)) // rpcs_per_job
	if rep != nil {
		rep.AddPopulation(fmt.Sprintf("Population study (%d scenarios)", st.Done), st)
	}
	return nil
}

// parseCombos parses "JS-LOCAL/JF-ORIG,JS-WRR/JF-HYSTERESIS".
func parseCombos(s string) ([]population.Combo, error) {
	var combos []population.Combo
	for _, part := range strings.Split(s, ",") {
		sched, fetch, ok := strings.Cut(strings.TrimSpace(part), "/")
		if !ok || sched == "" || fetch == "" {
			return nil, fmt.Errorf("bad combo %q: want SCHED/FETCH", part)
		}
		combos = append(combos, population.Combo{Sched: sched, Fetch: fetch})
	}
	return combos, nil
}
